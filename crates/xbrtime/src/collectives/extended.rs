//! Extended collectives (paper §7 future work, plus §4.7 gaps).
//!
//! The paper's initial library ships broadcast, reduction, scatter and
//! gather, and §4.7/§7 name the missing pieces: results "automatically
//! distributed to each PE" (OpenSHMEM's reduce-to-all and
//! collect/fcollect), "personalized all-to-all communication", and
//! "integration of collective functionality between a subset of PEs".
//! This module implements them:
//!
//! * [`reduce_all`] — reduction whose result lands on every PE. Four
//!   strategies ([`AllReduceAlgo`]): the paper's own composition ("must
//!   instead be accomplished through the use of a broadcast operation
//!   following the original call"), a direct recursive-doubling exchange,
//!   Rabenseifner's recursive-halving reduce-scatter + recursive-doubling
//!   allgather, and a bandwidth-optimal ring — all exact for any `n`,
//!   with the non-power-of-two tail folded inside the generators;
//! * [`all_gather`] — OpenSHMEM `fcollect` (equal counts, every PE receives
//!   the concatenation); single-stage fan or log-stage dissemination
//!   ([`AllGatherAlgo`]);
//! * [`all_to_all`] — personalized all-to-all via pairwise exchange;
//! * [`Team`] — a subset of PEs with translated ranks; team-scoped
//!   broadcast/reduce reuse the tree algorithms over team ranks.

use crate::collectives::broadcast::broadcast_kind_sync;
use crate::collectives::plan::{self, PlanKey};
use crate::collectives::policy::{self, Algorithm, SyncMode};
use crate::collectives::reduce::reduce_with_kind_sync;
use crate::collectives::schedule::{
    balanced_partition, binomial_halving_stages, CommSchedule, OpKind, Stage, TransferOp,
};
use crate::collectives::vrank::logical_rank;
use crate::fabric::{ceil_log2, CollectiveKind, CollectiveSample, Pe, SymmAlloc};
use crate::types::{ReduceOp, XbrNumeric, XbrType};

/// Largest power of two at or below `n` (`n ≥ 1`).
fn floor_pof2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1usize << (usize::BITS - 1 - n.leading_zeros())
}

/// Fold-in stage for non-power-of-two all-reduce tails: each *extra* rank
/// `pof2 + i`'s full vector is folded into core partner `i`'s buffer. The
/// read is one-directional (extras are never read by anyone else in this
/// stage), so an ordinary stage suffices — the reader's later READY posts
/// follow its fold in program order.
fn tail_fold_in(n_pes: usize, pof2: usize, nelems: usize) -> Stage {
    Stage::new(
        (0..n_pes - pof2)
            .map(|i| TransferOp {
                src_pe: pof2 + i,
                dst_pe: i,
                src_at: 0,
                dst_at: 0,
                nelems,
                stride: 1,
                kind: OpKind::GetFold,
            })
            .collect(),
    )
}

/// Fold-out stage: core partners push the finished vector back to the
/// extras. Issuer `i` is the same PE that read the extra's buffer in the
/// fold-in stage, so program order alone keeps the two from racing.
fn tail_fold_out(n_pes: usize, pof2: usize, nelems: usize) -> Stage {
    Stage::new(
        (0..n_pes - pof2)
            .map(|i| TransferOp {
                src_pe: i,
                dst_pe: pof2 + i,
                src_at: 0,
                dst_at: 0,
                nelems,
                stride: 1,
                kind: OpKind::Put,
            })
            .collect(),
    )
}

/// Recursive-doubling all-reduce schedule, exact for **any** `n`: ranks at
/// or above the largest power of two `pof2 ≤ n` first fold their vectors
/// into partners `rank − pof2` (fold-in stage), the `pof2` core ranks run
/// the classic `log2(pof2)` butterfly of symmetric pairwise folds, and a
/// final fold-out stage puts the finished vector back on the extras.
/// Power-of-two worlds get the pure butterfly with no tail stages. Because
/// the tail lives inside the generator, invoking the schedule directly
/// (plan cache, nonblocking path, conformance oracle) can never disagree
/// with the [`reduce_all_with`] entry point. Butterfly stages defer their
/// folds past the read acknowledgements because both partners read each
/// other's buffer before either may overwrite its own.
pub fn allreduce_recursive_doubling(n_pes: usize, nelems: usize) -> CommSchedule {
    if n_pes <= 1 || nelems == 0 {
        return CommSchedule::empty(n_pes, CollectiveKind::AllReduce);
    }
    let pof2 = floor_pof2(n_pes);
    let mut stages = Vec::new();
    if pof2 < n_pes {
        stages.push(tail_fold_in(n_pes, pof2, nelems));
    }
    for i in 0..ceil_log2(pof2) {
        let mut ops = Vec::new();
        for me in 0..pof2 {
            ops.push(TransferOp {
                src_pe: me ^ (1 << i),
                dst_pe: me,
                src_at: 0,
                dst_at: 0,
                nelems,
                stride: 1,
                kind: OpKind::GetFold,
            });
        }
        stages.push(Stage {
            ops,
            deferred_fold: true,
        });
    }
    if pof2 < n_pes {
        stages.push(tail_fold_out(n_pes, pof2, nelems));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllReduce,
        stages,
    }
}

/// Rabenseifner all-reduce schedule, exact for any `n`: after the
/// non-power-of-two fold-in, the `pof2` core ranks run a recursive-halving
/// reduce-scatter (each stage halves the element range a rank is
/// responsible for and folds the partner's copy of the kept half), then a
/// recursive-doubling allgather replays the splits in reverse, each rank
/// putting its finished range into its stage partner. Per-PE fold traffic
/// is `~2·nelems·(pof2−1)/pof2` elements instead of the butterfly's
/// `nelems·log2(pof2)` — the win at large payloads. Reduce-scatter stages
/// defer folds (mutual reads); allgather stages are plain puts into
/// disjoint, write-once ranges.
pub fn allreduce_rabenseifner(n_pes: usize, nelems: usize) -> CommSchedule {
    if n_pes <= 1 || nelems == 0 {
        return CommSchedule::empty(n_pes, CollectiveKind::AllReduce);
    }
    let pof2 = floor_pof2(n_pes);
    let mut stages = Vec::new();
    if pof2 < n_pes {
        stages.push(tail_fold_in(n_pes, pof2, nelems));
    }
    // Element range each core rank is still responsible for; refined by
    // every halving step. Empty ranges park at the split boundary, so the
    // reverse-merge below unions back to the parent range exactly.
    let mut range: Vec<(usize, usize)> = vec![(0, nelems); pof2];
    let split_masks: Vec<usize> =
        std::iter::successors(Some(pof2 >> 1), |&m| (m > 1).then_some(m >> 1)).collect();
    for &mask in &split_masks {
        let mut ops = Vec::new();
        for (me, &(lo, hi)) in range.iter().enumerate() {
            let mid = lo + (hi - lo) / 2;
            // The half I keep is the half I pull from my partner and fold.
            let (keep_lo, keep_hi) = if me & mask == 0 { (lo, mid) } else { (mid, hi) };
            if keep_hi > keep_lo {
                ops.push(TransferOp {
                    src_pe: me ^ mask,
                    dst_pe: me,
                    src_at: keep_lo,
                    dst_at: keep_lo,
                    nelems: keep_hi - keep_lo,
                    stride: 1,
                    kind: OpKind::GetFold,
                });
            }
        }
        for (me, r) in range.iter_mut().enumerate() {
            let (lo, hi) = *r;
            let mid = lo + (hi - lo) / 2;
            *r = if me & mask == 0 { (lo, mid) } else { (mid, hi) };
        }
        if !ops.is_empty() {
            stages.push(Stage {
                ops,
                deferred_fold: true,
            });
        }
    }
    // Allgather phase: replay the splits in reverse. At level `mask` the
    // writer of a range is the same partner that read it at the matching
    // split, so program order covers write-after-read, and every element
    // of a rank's buffer is remotely written at most once across levels.
    for &mask in split_masks.iter().rev() {
        let mut ops = Vec::new();
        for (me, &(lo, hi)) in range.iter().enumerate() {
            if hi > lo {
                ops.push(TransferOp {
                    src_pe: me,
                    dst_pe: me ^ mask,
                    src_at: lo,
                    dst_at: lo,
                    nelems: hi - lo,
                    stride: 1,
                    kind: OpKind::Put,
                });
            }
        }
        for me in 0..pof2 {
            let (lo, hi) = range[me];
            let (plo, phi) = range[me ^ mask];
            range[me] = (lo.min(plo), hi.max(phi));
        }
        if !ops.is_empty() {
            stages.push(Stage::new(ops));
        }
    }
    debug_assert!(range.iter().all(|&r| r == (0, nelems)));
    if pof2 < n_pes {
        stages.push(tail_fold_out(n_pes, pof2, nelems));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllReduce,
        stages,
    }
}

/// Ring all-reduce schedule, exact for any `n`: the vector is cut into `n`
/// balanced segments ([`balanced_partition`]); `n−1` reduce-scatter stages
/// each fold the predecessor's running segment into the local copy, then
/// `n−1` allgather stages each put the freshest finished segment to the
/// successor. Per-PE traffic is `~2·nelems·(n−1)/n` elements in
/// `nelems/n`-sized messages — bandwidth-optimal, and the put-based
/// allgather half rides the `Pipelined` chunked path. Reduce-scatter
/// stages defer their folds: the read acknowledgements are what
/// transitively order a later allgather put into a segment after the last
/// reduce-scatter read of it (ring dependencies alone only flow one way).
pub fn allreduce_ring(n_pes: usize, nelems: usize) -> CommSchedule {
    if n_pes <= 1 || nelems == 0 {
        return CommSchedule::empty(n_pes, CollectiveKind::AllReduce);
    }
    let seg = balanced_partition(nelems, n_pes);
    let mut stages = Vec::new();
    // Reduce-scatter: at step s, PE `me` pulls segment `me − 1 − s` (the
    // one its predecessor just finished folding) and folds it locally.
    for s in 0..n_pes - 1 {
        let mut ops = Vec::new();
        for me in 0..n_pes {
            let (off, len) = seg[(me + 2 * n_pes - 1 - s) % n_pes];
            if len > 0 {
                ops.push(TransferOp {
                    src_pe: (me + n_pes - 1) % n_pes,
                    dst_pe: me,
                    src_at: off,
                    dst_at: off,
                    nelems: len,
                    stride: 1,
                    kind: OpKind::GetFold,
                });
            }
        }
        if !ops.is_empty() {
            stages.push(Stage {
                ops,
                deferred_fold: true,
            });
        }
    }
    // Allgather: after the scatter phase PE `me` owns the complete fold of
    // segment `me + 1`; step s forwards segment `me + 1 − s` downstream.
    for s in 0..n_pes - 1 {
        let mut ops = Vec::new();
        for me in 0..n_pes {
            let (off, len) = seg[(me + 1 + n_pes - s) % n_pes];
            if len > 0 {
                ops.push(TransferOp {
                    src_pe: me,
                    dst_pe: (me + 1) % n_pes,
                    src_at: off,
                    dst_at: off,
                    nelems: len,
                    stride: 1,
                    kind: OpKind::Put,
                });
            }
        }
        if !ops.is_empty() {
            stages.push(Stage::new(ops));
        }
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllReduce,
        stages,
    }
}

/// All-gather schedule: in one stage every PE publishes its block at its
/// own slot on every PE (its own included) — `n` concurrent put fans.
pub fn all_gather_sched(n_pes: usize, per_pe: usize) -> CommSchedule {
    let mut ops = Vec::new();
    if per_pe > 0 {
        for me in 0..n_pes {
            for peer in 0..n_pes {
                ops.push(TransferOp {
                    src_pe: me,
                    dst_pe: peer,
                    src_at: 0,
                    dst_at: me * per_pe,
                    nelems: per_pe,
                    stride: 1,
                    kind: OpKind::PutFrom,
                });
            }
        }
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllGather,
        stages: vec![Stage::new(ops)],
    }
}

/// Recursive-doubling (dissemination) all-gather schedule, exact for any
/// `n`: stage 0 publishes every PE's private block into its own slot of
/// the board, then `⌈log2 n⌉` stages each pull an exponentially growing
/// window of blocks from the PE `2^k` ranks upstream — `O(log n)` stages
/// and `2n·per_pe` total elements versus the fan's single stage of `n²`
/// ops. Every board slot is written exactly once (stage 0 locally, later
/// stages by local gets), and a stage's READY post follows the poster's
/// own gets in program order, so plain stages suffice.
pub fn all_gather_doubling_sched(n_pes: usize, per_pe: usize) -> CommSchedule {
    let mut stages = Vec::new();
    if per_pe > 0 && n_pes > 1 {
        stages.push(Stage::new(
            (0..n_pes)
                .map(|me| TransferOp {
                    src_pe: me,
                    dst_pe: me,
                    src_at: 0,
                    dst_at: me * per_pe,
                    nelems: per_pe,
                    stride: 1,
                    kind: OpKind::PutFrom,
                })
                .collect(),
        ));
        // After k stages each PE holds the cyclic window of `have`
        // blocks ending at its own rank; it extends the window by pulling
        // the `cnt` blocks ending at rank `me − have` from that PE.
        let mut have = 1usize;
        while have < n_pes {
            let cnt = have.min(n_pes - have);
            let mut ops = Vec::new();
            for me in 0..n_pes {
                let src = (me + n_pes - have) % n_pes;
                let first = (src + 1 + n_pes - cnt) % n_pes;
                let mut pull = |b0: usize, nb: usize| {
                    ops.push(TransferOp {
                        src_pe: src,
                        dst_pe: me,
                        src_at: b0 * per_pe,
                        dst_at: b0 * per_pe,
                        nelems: nb * per_pe,
                        stride: 1,
                        kind: OpKind::Get,
                    });
                };
                if first <= src {
                    pull(first, cnt);
                } else {
                    // Window wraps rank 0: two contiguous gets.
                    pull(first, n_pes - first);
                    pull(0, src + 1);
                }
            }
            stages.push(Stage::new(ops));
            have += cnt;
        }
    } else if per_pe > 0 && n_pes == 1 {
        stages.push(Stage::new(vec![TransferOp {
            src_pe: 0,
            dst_pe: 0,
            src_at: 0,
            dst_at: 0,
            nelems: per_pe,
            stride: 1,
            kind: OpKind::PutFrom,
        }]));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllGather,
        stages,
    }
}

/// Personalized all-to-all schedule: one stage of pairwise-exchange puts,
/// each PE targeting `(rank + s) mod n` at hop `s` to spread traffic.
pub fn all_to_all_sched(n_pes: usize, per_pe: usize) -> CommSchedule {
    let mut ops = Vec::new();
    if per_pe > 0 {
        for s in 0..n_pes {
            for me in 0..n_pes {
                let target = (me + s) % n_pes;
                ops.push(TransferOp {
                    src_pe: me,
                    dst_pe: target,
                    src_at: target * per_pe,
                    dst_at: me * per_pe,
                    nelems: per_pe,
                    stride: 1,
                    kind: OpKind::PutFrom,
                });
            }
        }
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllToAll,
        stages: vec![Stage::new(ops)],
    }
}

/// Strategy for [`reduce_all`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AllReduceAlgo {
    /// Tree reduction to rank 0 followed by a tree broadcast — the
    /// composition the paper prescribes for its initial library.
    ReduceThenBroadcast,
    /// Direct recursive-doubling butterfly over full vectors: `⌈log2 N⌉`
    /// exchange stages, no root bottleneck; best at small payloads.
    RecursiveDoubling,
    /// Recursive-halving reduce-scatter + recursive-doubling allgather
    /// ([`allreduce_rabenseifner`]): log stages but only `~2/n` of the
    /// vector folded per PE — wins at medium/large payloads.
    Rabenseifner,
    /// Ring reduce-scatter + ring allgather ([`allreduce_ring`]):
    /// bandwidth-optimal `nelems/n` segments; the put half rides the
    /// `Pipelined` chunked path. Wins at large payloads, modest `n`.
    Ring,
    /// Pick per call from `(n_pes, payload bytes)` using crossovers
    /// calibrated from `xbench_sweep`
    /// ([`policy::auto_select_allreduce`]).
    #[default]
    Auto,
}

impl AllReduceAlgo {
    /// Stable lowercase label for reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            AllReduceAlgo::ReduceThenBroadcast => "reduce+bcast",
            AllReduceAlgo::RecursiveDoubling => "recursive-doubling",
            AllReduceAlgo::Rabenseifner => "rabenseifner",
            AllReduceAlgo::Ring => "ring",
            AllReduceAlgo::Auto => "auto",
        }
    }

    /// Resolve `Auto` for one call; concrete strategies pass through.
    pub fn resolve(self, n_pes: usize, nbytes: usize) -> AllReduceAlgo {
        match self {
            AllReduceAlgo::Auto => policy::auto_select_allreduce(n_pes, nbytes),
            other => other,
        }
    }

    /// The direct schedule strategies (everything but the two-collective
    /// `ReduceThenBroadcast` composition), for test/bench matrices.
    pub const DIRECT: [AllReduceAlgo; 3] = [
        AllReduceAlgo::RecursiveDoubling,
        AllReduceAlgo::Rabenseifner,
        AllReduceAlgo::Ring,
    ];
}

/// The schedule generator behind a resolved *direct* [`AllReduceAlgo`].
///
/// # Panics
/// Panics on [`AllReduceAlgo::ReduceThenBroadcast`] (a composition of two
/// collectives, not one schedule — see [`plan::allreduce_fused`] for its
/// fused form) and on unresolved [`AllReduceAlgo::Auto`].
pub fn allreduce_schedule(algo: AllReduceAlgo, n_pes: usize, nelems: usize) -> CommSchedule {
    match algo {
        AllReduceAlgo::RecursiveDoubling => allreduce_recursive_doubling(n_pes, nelems),
        AllReduceAlgo::Rabenseifner => allreduce_rabenseifner(n_pes, nelems),
        AllReduceAlgo::Ring => allreduce_ring(n_pes, nelems),
        other => panic!("no direct schedule generator for {other:?}"),
    }
}

/// Strategy for [`all_gather`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AllGatherAlgo {
    /// Single-stage put fan ([`all_gather_sched`]): every PE publishes its
    /// block on every PE — `n²` ops but only one stage of latency; wins at
    /// small `n`.
    Fan,
    /// Log-stage dissemination ([`all_gather_doubling_sched`]): `⌈log2 n⌉`
    /// doubling stages of `O(n)` total ops; wins at large `n`.
    RecursiveDoubling,
    /// Pick per call from `(n_pes, block bytes)`
    /// ([`policy::auto_select_all_gather`]).
    #[default]
    Auto,
}

impl AllGatherAlgo {
    /// Stable lowercase label for reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            AllGatherAlgo::Fan => "fan",
            AllGatherAlgo::RecursiveDoubling => "recursive-doubling",
            AllGatherAlgo::Auto => "auto",
        }
    }

    /// Resolve `Auto` for one call; concrete strategies pass through.
    pub fn resolve(self, n_pes: usize, nbytes: usize) -> AllGatherAlgo {
        match self {
            AllGatherAlgo::Auto => policy::auto_select_all_gather(n_pes, nbytes),
            other => other,
        }
    }
}

/// All-reduce: every PE receives the elementwise combination of all
/// contributions. `src` must be symmetric; `dest` receives `nelems`
/// elements (contiguous) on every PE.
pub fn reduce_all<T: XbrNumeric>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    op: ReduceOp,
    algo: AllReduceAlgo,
) {
    reduce_all_sync(pe, dest, src, nelems, op, algo, SyncMode::Barrier);
}

/// [`reduce_all`] under an explicit [`SyncMode`].
pub fn reduce_all_sync<T: XbrNumeric>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    op: ReduceOp,
    algo: AllReduceAlgo,
    sync: SyncMode,
) {
    let f = op
        .combiner::<T>()
        .unwrap_or_else(|| panic!("reduction operator {op:?} requires a non-floating-point type"));
    reduce_all_with_sync(pe, dest, src, nelems, f, algo, sync);
}

/// All-reduce with an arbitrary associative, commutative combiner.
pub fn reduce_all_with<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    f: impl Fn(T, T) -> T + Copy,
    algo: AllReduceAlgo,
) {
    reduce_all_with_sync(pe, dest, src, nelems, f, algo, SyncMode::Barrier);
}

/// [`reduce_all_with`] under an explicit [`SyncMode`]. `Auto` algorithm
/// selection resolves here from `(n_pes, payload bytes)`. The direct
/// strategies run as one compiled schedule — the non-power-of-two tail is
/// folded inside the generators, so there is no caller-side pre/post
/// reduce-through-rank-0 step.
pub fn reduce_all_with_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    f: impl Fn(T, T) -> T + Copy,
    algo: AllReduceAlgo,
    sync: SyncMode,
) {
    assert!(dest.len() >= nelems, "dest too small for all-reduce result");
    let n_pes = pe.n_pes();
    let kind = CollectiveKind::AllReduce;
    if nelems == 0 {
        // Fully inert: no staging board, no barriers, telemetry only.
        pe.note_collective(
            kind,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return;
    }
    let algo = algo.resolve(n_pes, nelems * std::mem::size_of::<T>());
    if algo == AllReduceAlgo::ReduceThenBroadcast {
        reduce_with_kind_sync(pe, dest, src, nelems, 1, 0, kind, f, sync);
        let bcast = pe.shared_malloc::<T>(nelems);
        // Rank 0 holds the result; broadcast it to everyone.
        let payload: Vec<T> = if pe.rank() == 0 {
            dest[..nelems].to_vec()
        } else {
            vec![T::default(); nelems]
        };
        broadcast_kind_sync(pe, &bcast, &payload, nelems, 1, 0, kind, sync);
        pe.barrier();
        pe.heap_read_strided(bcast.whole(), &mut dest[..nelems], nelems, 1);
        pe.barrier();
        pe.shared_free(bcast);
        return;
    }
    let (tag, shape) = plan::allreduce_plan_id(algo);
    let work = pe.shared_malloc::<T>(nelems);
    pe.get_symm(work.whole(), src.whole(), nelems, 1, pe.rank());
    pe.barrier();
    let key = PlanKey::rooted(
        kind,
        shape,
        sync,
        n_pes,
        0,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag,
    );
    plan::run_schedule(
        pe,
        key,
        || allreduce_schedule(algo, n_pes, nelems),
        work.whole(),
        &[],
        &mut [],
        Some(&f),
        sync,
    );
    pe.heap_read_strided(work.whole(), &mut dest[..nelems], nelems, 1);
    pe.barrier();
    pe.shared_free(work);
}

/// All-gather (OpenSHMEM `fcollect`): every PE contributes `per_pe`
/// elements from `src`; every PE's `dest` receives the rank-ordered
/// concatenation (`n_pes * per_pe` elements). Auto algorithm and sync.
pub fn all_gather<T: XbrType>(pe: &Pe, dest: &mut [T], src: &[T], per_pe: usize) {
    all_gather_algo_sync(pe, dest, src, per_pe, AllGatherAlgo::Auto, SyncMode::Auto);
}

/// [`all_gather`] under an explicit [`SyncMode`].
pub fn all_gather_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    per_pe: usize,
    sync: SyncMode,
) {
    all_gather_algo_sync(pe, dest, src, per_pe, AllGatherAlgo::Auto, sync);
}

/// [`all_gather`] with explicit strategy and sync mode. Zero-length
/// gathers are fully inert: telemetry only — no staging board, no
/// barriers, no trace events.
pub fn all_gather_algo_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    per_pe: usize,
    algo: AllGatherAlgo,
    sync: SyncMode,
) {
    let n_pes = pe.n_pes();
    let total = per_pe * n_pes;
    assert!(src.len() >= per_pe, "src shorter than per_pe");
    assert!(dest.len() >= total, "dest shorter than n_pes * per_pe");
    if total == 0 {
        pe.note_collective(
            CollectiveKind::AllGather,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return;
    }
    let algo = algo.resolve(n_pes, per_pe * std::mem::size_of::<T>());
    let (tag, build): (u64, fn(usize, usize) -> CommSchedule) = match algo {
        AllGatherAlgo::Fan => (plan::tag::ALL_GATHER, all_gather_sched),
        AllGatherAlgo::RecursiveDoubling => (plan::tag::ALL_GATHER_RD, all_gather_doubling_sched),
        AllGatherAlgo::Auto => unreachable!("resolved above"),
    };
    let board = pe.shared_malloc::<T>(total);
    let key = PlanKey::rooted(
        CollectiveKind::AllGather,
        Algorithm::Binomial,
        sync,
        n_pes,
        0,
        per_pe,
        1,
        std::mem::size_of::<T>(),
        tag,
    );
    plan::run_schedule(
        pe,
        key,
        || build(n_pes, per_pe),
        board.whole(),
        src,
        &mut [],
        None,
        sync,
    );
    pe.heap_read_strided(board.whole(), &mut dest[..total], total, 1);
    pe.barrier();
    pe.shared_free(board);
}

/// Personalized all-to-all: PE `s`'s block `src[d*per_pe..]` lands in PE
/// `d`'s `dest[s*per_pe..]`. Pairwise-exchange schedule: stage `s` pairs
/// each PE with `(rank + s) mod n`, spreading traffic evenly.
pub fn all_to_all<T: XbrType>(pe: &Pe, dest: &mut [T], src: &[T], per_pe: usize) {
    all_to_all_sync(pe, dest, src, per_pe, SyncMode::Barrier);
}

/// [`all_to_all`] under an explicit [`SyncMode`]. Zero-length exchanges
/// are fully inert (telemetry only).
pub fn all_to_all_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    per_pe: usize,
    sync: SyncMode,
) {
    let n_pes = pe.n_pes();
    let total = per_pe * n_pes;
    assert!(src.len() >= total, "src shorter than n_pes * per_pe");
    assert!(dest.len() >= total, "dest shorter than n_pes * per_pe");
    if total == 0 {
        pe.note_collective(
            CollectiveKind::AllToAll,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return;
    }
    let board = pe.shared_malloc::<T>(total);
    let key = PlanKey::rooted(
        CollectiveKind::AllToAll,
        Algorithm::Binomial,
        sync,
        n_pes,
        0,
        per_pe,
        1,
        std::mem::size_of::<T>(),
        plan::tag::ALL_TO_ALL,
    );
    plan::run_schedule(
        pe,
        key,
        || all_to_all_sched(n_pes, per_pe),
        board.whole(),
        src,
        &mut [],
        None,
        sync,
    );
    pe.heap_read_strided(board.whole(), &mut dest[..total], total, 1);
    pe.barrier();
    pe.shared_free(board);
}

/// A subset of PEs participating in team-scoped collectives.
///
/// Rank translation only: synchronisation still uses the global barrier
/// (every PE must therefore *call* team operations, members and
/// non-members alike — non-members contribute nothing and receive
/// nothing). Fully independent team barriers are the paper's own future
/// work ("Integration of collective functionality between a subset of
/// PEs").
#[derive(Clone, Debug)]
pub struct Team {
    members: Vec<usize>,
}

impl Team {
    /// Build a team from distinct global ranks.
    ///
    /// # Panics
    /// Panics on duplicates or an empty member list.
    pub fn new(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "team must have at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate team members");
        Team { members }
    }

    /// Number of member PEs.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of team-rank `t`.
    pub fn global(&self, t: usize) -> usize {
        self.members[t]
    }

    /// Team rank of a global rank, if it is a member.
    pub fn team_rank(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == global)
    }

    /// The team broadcast's schedule over *global* ranks: a binomial tree
    /// across the members, rooted at team-rank `team_root`. Non-members
    /// appear in no op and simply keep pace with the stage barriers.
    pub fn broadcast_schedule(
        &self,
        n_pes: usize,
        nelems: usize,
        team_root: usize,
    ) -> CommSchedule {
        assert!(team_root < self.size(), "team root out of range");
        let n = self.size();
        if n <= 1 {
            return CommSchedule::empty(n_pes, CollectiveKind::Broadcast);
        }
        let stages = binomial_halving_stages(n, |ops, _i, vir, vpart| {
            ops.push(TransferOp {
                src_pe: self.global(logical_rank(vir, team_root, n)),
                dst_pe: self.global(logical_rank(vpart, team_root, n)),
                src_at: 0,
                dst_at: 0,
                nelems,
                stride: 1,
                kind: OpKind::Put,
            });
        });
        CommSchedule {
            n_pes,
            kind: CollectiveKind::Broadcast,
            stages,
        }
    }

    /// The team reduction's schedule over global ranks: tree fold toward
    /// team-rank 0 (partners outside the team size are simply skipped, so
    /// non-power-of-two teams stay exact).
    pub fn reduce_schedule(&self, n_pes: usize, nelems: usize) -> CommSchedule {
        let n = self.size();
        let mut stages = Vec::new();
        if n > 1 && nelems > 0 {
            let nstages = ceil_log2(n);
            let mut mask = (1usize << nstages) - 1;
            for i in 0..nstages {
                mask ^= 1 << i;
                let mut ops = Vec::new();
                for tr in 0..n {
                    if tr | mask == mask && tr & (1 << i) == 0 {
                        let part = tr ^ (1 << i);
                        if tr < part && part < n {
                            ops.push(TransferOp {
                                src_pe: self.global(part),
                                dst_pe: self.global(tr),
                                src_at: 0,
                                dst_at: 0,
                                nelems,
                                stride: 1,
                                kind: OpKind::GetFold,
                            });
                        }
                    }
                }
                stages.push(Stage::new(ops));
            }
        }
        CommSchedule {
            n_pes,
            kind: CollectiveKind::AllReduce,
            stages,
        }
    }

    /// Team-scoped broadcast from team-rank `team_root`. Every PE (member
    /// or not) must call this; only members move data.
    pub fn broadcast<T: XbrType>(
        &self,
        pe: &Pe,
        dest: &SymmAlloc<T>,
        src: &[T],
        nelems: usize,
        team_root: usize,
    ) {
        self.broadcast_sync(pe, dest, src, nelems, team_root, SyncMode::Barrier);
    }

    /// [`Team::broadcast`] under an explicit [`SyncMode`]. Non-members
    /// appear in no op, so under signaled/pipelined sync they post and
    /// wait on no slots; like members, they join the collective's single
    /// closing barrier.
    pub fn broadcast_sync<T: XbrType>(
        &self,
        pe: &Pe,
        dest: &SymmAlloc<T>,
        src: &[T],
        nelems: usize,
        team_root: usize,
        sync: SyncMode,
    ) {
        self.broadcast_with_kind_sync(
            pe,
            dest,
            src,
            nelems,
            team_root,
            CollectiveKind::Broadcast,
            sync,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn broadcast_with_kind_sync<T: XbrType>(
        &self,
        pe: &Pe,
        dest: &SymmAlloc<T>,
        src: &[T],
        nelems: usize,
        team_root: usize,
        kind: CollectiveKind,
        sync: SyncMode,
    ) {
        if self.team_rank(pe.rank()) == Some(team_root) {
            pe.heap_write_strided(dest.whole(), src, nelems, 1);
        }
        let n_pes = pe.n_pes();
        let mut key = PlanKey::rooted(
            kind,
            Algorithm::Binomial,
            sync,
            n_pes,
            team_root,
            nelems,
            1,
            std::mem::size_of::<T>(),
            plan::tag::TEAM_BROADCAST,
        );
        key.shape.extend(self.members.iter().map(|&m| m as u64));
        plan::run_schedule(
            pe,
            key,
            || {
                let mut sched = self.broadcast_schedule(n_pes, nelems, team_root);
                sched.kind = kind;
                sched
            },
            dest.whole(),
            &[],
            &mut [],
            None,
            sync,
        );
    }

    /// Team-scoped all-reduce (reduce-to-team-root-then-broadcast). Every
    /// PE must call; only members contribute and receive.
    pub fn reduce_all<T: XbrType>(
        &self,
        pe: &Pe,
        dest: &mut [T],
        src: &SymmAlloc<T>,
        nelems: usize,
        f: impl Fn(T, T) -> T + Copy,
    ) {
        self.reduce_all_sync(pe, dest, src, nelems, f, SyncMode::Barrier);
    }

    /// [`Team::reduce_all`] under an explicit [`SyncMode`].
    pub fn reduce_all_sync<T: XbrType>(
        &self,
        pe: &Pe,
        dest: &mut [T],
        src: &SymmAlloc<T>,
        nelems: usize,
        f: impl Fn(T, T) -> T + Copy,
        sync: SyncMode,
    ) {
        let my_team_rank = self.team_rank(pe.rank());
        let work = pe.shared_malloc::<T>(nelems.max(1));
        if my_team_rank.is_some() && nelems > 0 {
            pe.get_symm(work.whole(), src.whole(), nelems, 1, pe.rank());
        }
        pe.barrier();
        // Tree-reduce over team ranks toward team rank 0.
        let n_pes = pe.n_pes();
        let mut key = PlanKey::rooted(
            CollectiveKind::AllReduce,
            Algorithm::Binomial,
            sync,
            n_pes,
            0,
            nelems,
            1,
            std::mem::size_of::<T>(),
            plan::tag::TEAM_REDUCE,
        );
        key.shape.extend(self.members.iter().map(|&m| m as u64));
        plan::run_schedule(
            pe,
            key,
            || self.reduce_schedule(n_pes, nelems),
            work.whole(),
            &[],
            &mut [],
            Some(&f),
            sync,
        );
        // Team-rank 0 broadcasts the result back through the team.
        let payload: Vec<T> = if my_team_rank == Some(0) {
            pe.heap_read_vec(work.whole(), nelems)
        } else {
            vec![T::default(); nelems]
        };
        self.broadcast_with_kind_sync(
            pe,
            &work,
            &payload,
            nelems,
            0,
            CollectiveKind::AllReduce,
            sync,
        );
        pe.barrier();
        if my_team_rank.is_some() && nelems > 0 {
            pe.heap_read_strided(work.whole(), &mut dest[..nelems], nelems, 1);
        }
        pe.barrier();
        pe.shared_free(work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};

    #[test]
    fn reduce_all_all_algorithms_agree() {
        for n in 1..=8 {
            for algo in [
                AllReduceAlgo::ReduceThenBroadcast,
                AllReduceAlgo::RecursiveDoubling,
                AllReduceAlgo::Rabenseifner,
                AllReduceAlgo::Ring,
                AllReduceAlgo::Auto,
            ] {
                let report = Fabric::run(FabricConfig::new(n), |pe| {
                    let src = pe.shared_malloc::<u64>(3);
                    pe.heap_write(src.whole(), &[pe.rank() as u64, 1, pe.rank() as u64 * 2]);
                    pe.barrier();
                    let mut d = [0u64; 3];
                    reduce_all(pe, &mut d, &src, 3, ReduceOp::Sum, algo);
                    pe.barrier();
                    d
                });
                let n64 = n as u64;
                let expect = [
                    (0..n64).sum::<u64>(),
                    n64,
                    (0..n64).map(|r| r * 2).sum::<u64>(),
                ];
                for (rank, got) in report.results.iter().enumerate() {
                    assert_eq!(got, &expect, "n={n} algo={algo:?} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        for n in 1..=6 {
            let report = Fabric::run(FabricConfig::new(n), |pe| {
                let src = [pe.rank() as u32 * 10, pe.rank() as u32 * 10 + 1];
                let mut dest = vec![0u32; n * 2];
                all_gather(pe, &mut dest, &src, 2);
                pe.barrier();
                dest
            });
            let expect: Vec<u32> = (0..n as u32).flat_map(|r| [r * 10, r * 10 + 1]).collect();
            for got in &report.results {
                assert_eq!(got, &expect, "n={n}");
            }
        }
    }

    #[test]
    fn all_to_all_transposes_blocks() {
        for n in 1..=6 {
            let report = Fabric::run(FabricConfig::new(n), |pe| {
                // src block for destination d: value 100*me + d.
                let src: Vec<u64> = (0..n).map(|d| 100 * pe.rank() as u64 + d as u64).collect();
                let mut dest = vec![0u64; n];
                all_to_all(pe, &mut dest, &src, 1);
                pe.barrier();
                dest
            });
            for (me, got) in report.results.iter().enumerate() {
                let expect: Vec<u64> = (0..n).map(|s| 100 * s as u64 + me as u64).collect();
                assert_eq!(got, &expect, "n={n} rank={me}");
            }
        }
    }

    #[test]
    fn all_to_all_multielement_blocks() {
        let n = 4;
        let per = 3;
        let report = Fabric::run(FabricConfig::new(n), |pe| {
            let src: Vec<u32> = (0..n * per)
                .map(|i| (pe.rank() * 1000 + i) as u32)
                .collect();
            let mut dest = vec![0u32; n * per];
            all_to_all(pe, &mut dest, &src, per);
            pe.barrier();
            dest
        });
        for (me, got) in report.results.iter().enumerate() {
            for s in 0..n {
                for j in 0..per {
                    assert_eq!(got[s * per + j], (s * 1000 + me * per + j) as u32);
                }
            }
        }
    }

    #[test]
    fn team_broadcast_reaches_members_only() {
        let report = Fabric::run(FabricConfig::new(6), |pe| {
            let team = Team::new(vec![1, 3, 5]);
            let dest = pe.shared_malloc::<u64>(2);
            pe.heap_write(dest.whole(), &[0, 0]);
            pe.barrier();
            let src = [42u64, 43];
            team.broadcast(pe, &dest, &src, 2, 0); // team root = global rank 1
            pe.barrier();
            pe.heap_read_vec(dest.whole(), 2)
        });
        for (rank, got) in report.results.iter().enumerate() {
            if [1, 3, 5].contains(&rank) {
                assert_eq!(got, &vec![42, 43], "member {rank}");
            } else {
                assert_eq!(got, &vec![0, 0], "non-member {rank} must be untouched");
            }
        }
    }

    #[test]
    fn team_reduce_all_sums_members() {
        let report = Fabric::run(FabricConfig::new(5), |pe| {
            let team = Team::new(vec![0, 2, 4]);
            let src = pe.shared_malloc::<i64>(1);
            pe.heap_store(src.whole(), pe.rank() as i64 + 1);
            pe.barrier();
            let mut d = [0i64];
            team.reduce_all(pe, &mut d, &src, 1, |a, b| a + b);
            pe.barrier();
            d[0]
        });
        // Members 0,2,4 contribute 1,3,5 → 9 on members; 0 on non-members.
        assert_eq!(report.results[0], 9);
        assert_eq!(report.results[2], 9);
        assert_eq!(report.results[4], 9);
        assert_eq!(report.results[1], 0);
        assert_eq!(report.results[3], 0);
    }

    #[test]
    fn team_of_one() {
        let report = Fabric::run(FabricConfig::new(3), |pe| {
            let team = Team::new(vec![2]);
            let dest = pe.shared_malloc::<u32>(1);
            pe.heap_store(dest.whole(), 0);
            pe.barrier();
            team.broadcast(pe, &dest, &[99], 1, 0);
            pe.barrier();
            pe.heap_load(dest.whole())
        });
        assert_eq!(report.results, vec![0, 0, 99]);
    }

    #[test]
    #[should_panic(expected = "duplicate team members")]
    fn duplicate_members_rejected() {
        let _ = Team::new(vec![0, 1, 1]);
    }

    /// Team collectives under every concrete sync mode: non-members must
    /// neither receive data nor strand signal slots (a stranded slot would
    /// hang the drain, and the short watchdog would turn that hang into a
    /// failure here rather than a stuck test run).
    #[test]
    fn team_collectives_under_all_sync_modes() {
        use std::time::Duration;
        for sync in SyncMode::CONCRETE {
            let cfg = FabricConfig::new(6).with_watchdog(Duration::from_secs(5));
            let report = Fabric::run(cfg, move |pe| {
                let team = Team::new(vec![1, 3, 4, 5]);
                let dest = pe.shared_malloc::<u64>(2);
                pe.heap_write(dest.whole(), &[0, 0]);
                let src_sum = pe.shared_malloc::<i64>(1);
                pe.heap_store(src_sum.whole(), pe.rank() as i64 + 1);
                pe.barrier();
                team.broadcast_sync(pe, &dest, &[42, 43], 2, 0, sync);
                let mut sum = [0i64];
                team.reduce_all_sync(pe, &mut sum, &src_sum, 1, |a, b| a + b, sync);
                pe.barrier();
                (pe.heap_read_vec(dest.whole(), 2), sum[0])
            });
            for (rank, (bcast, sum)) in report.results.iter().enumerate() {
                if [1, 3, 4, 5].contains(&rank) {
                    assert_eq!(bcast, &vec![42, 43], "sync={sync:?} member {rank}");
                    // Members 1,3,4,5 contribute rank+1: 2+4+5+6 = 17.
                    assert_eq!(*sum, 17, "sync={sync:?} member {rank}");
                } else {
                    assert_eq!(bcast, &vec![0, 0], "sync={sync:?} non-member {rank}");
                    assert_eq!(*sum, 0, "sync={sync:?} non-member {rank}");
                }
            }
            // Every posted signal was consumed: nothing left stranded in
            // the symmetric table by the non-members.
            assert_eq!(
                report.stats.signals, report.stats.signal_waits,
                "sync={sync:?}: stranded signal slots"
            );
        }
    }

    /// Non-power-of-two worlds across every direct strategy and sync
    /// mode: the fold-in/fold-out tail stages live *inside* the
    /// generators, so the schedules themselves must be exact.
    #[test]
    fn reduce_all_non_power_of_two_tail_all_sync_modes() {
        use std::time::Duration;
        for n in [3usize, 5, 6, 7] {
            for algo in AllReduceAlgo::DIRECT {
                for sync in SyncMode::CONCRETE {
                    let cfg = FabricConfig::new(n).with_watchdog(Duration::from_secs(5));
                    let report = Fabric::run(cfg, move |pe| {
                        let src = pe.shared_malloc::<u64>(3);
                        pe.heap_write(src.whole(), &[pe.rank() as u64, 1, pe.rank() as u64 * 2]);
                        pe.barrier();
                        let mut d = [0u64; 3];
                        reduce_all_with_sync(
                            pe,
                            &mut d,
                            &src,
                            3,
                            |a, b| a.wrapping_add(b),
                            algo,
                            sync,
                        );
                        pe.barrier();
                        d
                    });
                    let n64 = n as u64;
                    let expect = [
                        (0..n64).sum::<u64>(),
                        n64,
                        (0..n64).map(|r| r * 2).sum::<u64>(),
                    ];
                    for (rank, got) in report.results.iter().enumerate() {
                        assert_eq!(
                            got, &expect,
                            "n={n} algo={algo:?} sync={sync:?} rank={rank}"
                        );
                    }
                    assert_eq!(
                        report.stats.signals, report.stats.signal_waits,
                        "n={n} algo={algo:?} sync={sync:?}: stranded signal slots"
                    );
                }
            }
        }
    }

    /// The fold-happens-somewhere check for large segmented payloads:
    /// ring and Rabenseifner partition the vector, so run enough elements
    /// that every PE owns a non-trivial segment and the balanced
    /// partition has a remainder.
    #[test]
    fn segmented_allreduce_algorithms_large_uneven_vector() {
        for n in [4usize, 5, 7] {
            let nelems = 4 * n + 3; // not divisible by n
            for algo in [AllReduceAlgo::Rabenseifner, AllReduceAlgo::Ring] {
                let report = Fabric::run(FabricConfig::new(n), move |pe| {
                    let src = pe.shared_malloc::<u64>(nelems);
                    let mine: Vec<u64> = (0..nelems)
                        .map(|i| (pe.rank() as u64 + 1) * 1000 + i as u64)
                        .collect();
                    pe.heap_write(src.whole(), &mine);
                    pe.barrier();
                    let mut d = vec![0u64; nelems];
                    reduce_all_with_sync(
                        pe,
                        &mut d,
                        &src,
                        nelems,
                        |a, b| a.wrapping_add(b),
                        algo,
                        SyncMode::Auto,
                    );
                    pe.barrier();
                    d
                });
                let expect: Vec<u64> = (0..nelems)
                    .map(|i| (1..=n as u64).map(|r| r * 1000 + i as u64).sum())
                    .collect();
                for (rank, got) in report.results.iter().enumerate() {
                    assert_eq!(got, &expect, "n={n} algo={algo:?} rank={rank}");
                }
            }
        }
    }

    /// `all_gather` strategies agree with the rank-ordered concatenation
    /// for every n, including the wrapped-window dissemination cases.
    #[test]
    fn all_gather_doubling_matches_fan() {
        for n in 1..=9 {
            for algo in [AllGatherAlgo::Fan, AllGatherAlgo::RecursiveDoubling] {
                let report = Fabric::run(FabricConfig::new(n), move |pe| {
                    let src = [pe.rank() as u32 * 10, pe.rank() as u32 * 10 + 1];
                    let mut dest = vec![0u32; n * 2];
                    all_gather_algo_sync(pe, &mut dest, &src, 2, algo, SyncMode::Auto);
                    pe.barrier();
                    dest
                });
                let expect: Vec<u32> = (0..n as u32).flat_map(|r| [r * 10, r * 10 + 1]).collect();
                for got in &report.results {
                    assert_eq!(got, &expect, "n={n} algo={algo:?}");
                }
            }
        }
    }
}
