//! Policy-driven algorithm selection.
//!
//! The paper's design discussion (§4.1–4.2) observes that *"there is no
//! universally optimal solution"* for a collective: latency-bound small
//! transfers and bandwidth-bound large transfers favour different
//! communication shapes, and production libraries switch algorithms at
//! runtime. This module provides that switch for our library: an
//! [`AlgorithmPolicy`] names either a fixed [`Algorithm`] or [`Auto`]
//! selection from `(collective, n_pes, message bytes)`, with crossover
//! constants calibrated against the `xbench_sweep` benchmark's cost-model
//! measurements (see `BENCH_sweep.json`).
//!
//! [`Auto`]: AlgorithmPolicy::Auto

use crate::collectives::{baseline, broadcast, gather, reduce, scatter};
use crate::fabric::{CollectiveKind, Pe, SymmAlloc};
use crate::types::{ReduceOp, XbrNumeric, XbrType};

/// A concrete collective algorithm shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Binomial tree with recursive halving/doubling (paper Algorithms 1–4).
    #[default]
    Binomial,
    /// Root-sequential: the root exchanges with every peer in one stage.
    Linear,
    /// Neighbour-to-neighbour pipeline in `n − 1` stages (broadcast only;
    /// collectives without a ring shape fall back to linear).
    Ring,
}

impl Algorithm {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Binomial => "binomial",
            Algorithm::Linear => "linear",
            Algorithm::Ring => "ring",
        }
    }
}

/// How the library picks an [`Algorithm`] for each call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AlgorithmPolicy {
    /// Always the paper's binomial tree.
    #[default]
    Binomial,
    /// Always root-sequential.
    Linear,
    /// Always ring (where a ring shape exists).
    Ring,
    /// Pick per call from `(collective, n_pes, nbytes)` using the
    /// calibrated crossovers in [`AlgorithmPolicy::select`].
    Auto,
}

/// How the schedule executor synchronizes the stages of a collective.
///
/// The paper's Algorithms 1–4 close every stage with a full barrier.
/// The alternative modes replace that global synchronization with the
/// point-to-point signal plane ([`Pe::signal_post`](crate::fabric::Pe) /
/// [`Pe::signal_wait`](crate::fabric::Pe)): each transfer waits only on
/// the signals of the transfers that feed it, and one barrier closes the
/// whole collective.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// A full-fabric barrier after every stage — the paper's Algorithms
    /// 1–4 exactly as written.
    #[default]
    Barrier,
    /// Put-with-signal / wait-until between communicating pairs; the
    /// per-stage barriers disappear and one final barrier closes the
    /// collective.
    Signaled,
    /// [`Signaled`](SyncMode::Signaled), plus segmented pipelining: large
    /// puts are split into [`pipeline_chunks`] segments, each signaled
    /// independently, so a child can forward chunk `k` while chunk `k+1`
    /// is still in flight to it.
    Pipelined,
    /// Pick per call from `(n_pes, payload bytes)` using the crossovers
    /// calibrated from `xbench_sweep` (see `BENCH_sweep.json`).
    Auto,
}

/// Below this PE count the schedules are one or two stages deep and a
/// barrier costs no more than the signal exchange that would replace it
/// (`xbench_sweep` at 2 PEs: barrier wins every swept cell by the signal
/// bookkeeping, ~30 cycles): `Auto` stays with the paper's barrier
/// executor. The executor additionally falls back to barriers for
/// single-stage schedules at any scale (see `execute_sync`).
const AUTO_SYNC_MIN_PES: usize = 4;

/// Payload size (bytes per transfer) from which `Auto` turns on
/// segmented pipelining. Calibrated from `xbench_sweep` on the paper
/// cost model: from 512 KiB broadcasts the pipelined chain overlaps hop
/// `k`'s forwarding with hop `k + 1`'s arrival and beats the barrier
/// executor's best algorithm by 12% at 8 PEs (720k vs 818k cycles) and
/// 24% at 4 PEs (363k vs 478k); at 32 KiB and below the per-segment
/// fabric overhead (OLB + flight latency + remote DRAM per chunk) eats
/// the overlap win and plain signaling is the better point-to-point
/// mode.
const AUTO_PIPELINE_MIN_BYTES: usize = 64 * 1024;

/// Segment size for [`SyncMode::Pipelined`]: large enough that the
/// per-segment fixed fabric cost (OLB lookup + flight latency + remote
/// DRAM ≈ 230 cycles) stays small against the segment's channel
/// occupancy (8 KiB / 8 B-per-cycle = 1024 cycles), small enough that a
/// binomial tree's forwarding chain gets several segments in flight.
pub const PIPELINE_CHUNK_BYTES: usize = 8 * 1024;

/// Upper bound on segments per transfer, which also sizes the signal
/// table's per-op chunk slots.
pub const MAX_PIPELINE_CHUNKS: usize = 8;

/// Deterministic segment count for a transfer of `nbytes` under
/// [`SyncMode::Pipelined`]. Every PE computes this from the schedule
/// alone, so posters and waiters always agree on the chunking.
pub fn pipeline_chunks(nbytes: usize) -> usize {
    if nbytes < 2 * PIPELINE_CHUNK_BYTES {
        1
    } else {
        nbytes
            .div_ceil(PIPELINE_CHUNK_BYTES)
            .min(MAX_PIPELINE_CHUNKS)
    }
}

/// Signal-table slots reserved per schedule op: one per possible pipeline
/// segment, plus a readiness slot (get-kind ops: "my segment is valid,
/// pull away") and an acknowledgement slot (deferred folds: "I have read
/// your segment, you may overwrite yours"). The executor, the watchdog's
/// slot naming, and the conformance oracle all derive slot addresses from
/// this one layout.
pub const SLOTS_PER_OP: usize = MAX_PIPELINE_CHUNKS + 2;

/// Per-op slot index of the readiness flag.
pub const READY_SLOT: usize = MAX_PIPELINE_CHUNKS;

/// Per-op slot index of the deferred-fold acknowledgement flag.
pub const ACK_SLOT: usize = MAX_PIPELINE_CHUNKS + 1;

/// What a signal-table slot is used for, under the executor's
/// [`SLOTS_PER_OP`] per-op layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotRole {
    /// Completion flag of pipeline segment `.0` of the op's payload.
    Chunk(usize),
    /// The op's readiness flag.
    Ready,
    /// The op's deferred-fold read acknowledgement.
    Ack,
}

impl std::fmt::Display for SlotRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotRole::Chunk(c) => write!(f, "chunk {c}"),
            SlotRole::Ready => write!(f, "ready"),
            SlotRole::Ack => write!(f, "ack"),
        }
    }
}

/// Decompose a global signal-table slot index into the executor's
/// `(global op index, role)` addressing. The op index is global in
/// stage-major order (`CommSchedule::op_bases` recovers the stage).
pub fn slot_role(slot: usize) -> (usize, SlotRole) {
    let role = match slot % SLOTS_PER_OP {
        READY_SLOT => SlotRole::Ready,
        ACK_SLOT => SlotRole::Ack,
        c => SlotRole::Chunk(c),
    };
    (slot / SLOTS_PER_OP, role)
}

impl SyncMode {
    /// The concrete (non-`Auto`) modes, in display order — the axis chaos
    /// and equivalence sweeps iterate over.
    pub const CONCRETE: [SyncMode; 3] =
        [SyncMode::Barrier, SyncMode::Signaled, SyncMode::Pipelined];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            SyncMode::Barrier => "barrier",
            SyncMode::Signaled => "signaled",
            SyncMode::Pipelined => "pipelined",
            SyncMode::Auto => "auto",
        }
    }

    /// Resolve `Auto` to a concrete mode for one call. `nbytes` is the
    /// largest single transfer in the schedule. Deterministic in its
    /// inputs, so every PE of a collective resolves identically.
    pub fn resolve(self, n_pes: usize, nbytes: usize) -> SyncMode {
        match self {
            SyncMode::Auto => {
                if n_pes < AUTO_SYNC_MIN_PES {
                    SyncMode::Barrier
                } else if nbytes >= AUTO_PIPELINE_MIN_BYTES {
                    SyncMode::Pipelined
                } else {
                    SyncMode::Signaled
                }
            }
            m => m,
        }
    }
}

/// With 2 PEs every shape degenerates to one transfer and the swept
/// cycles are identical across algorithms; `Auto` goes linear (one stage,
/// one barrier, no tree bookkeeping).
const AUTO_LINEAR_MAX_PES: usize = 2;

/// From this PE count up the root's serialised `n − 1` transfers dominate
/// at *every* swept payload, so `Auto` always takes the tree. Calibrated
/// from `xbench_sweep` on the paper cost model: at 8 PEs binomial beats
/// linear already at 8-byte broadcasts (2176 vs 2392 cycles) and the gap
/// widens with size (793k vs 1296k at 512 KiB).
const AUTO_TREE_ALWAYS_PES: usize = 8;

/// Calibrated payload crossover (bytes) for the intermediate PE counts:
/// under it the tree's `⌈log2 n⌉` stage barriers dominate and linear
/// wins; above it the root's serialised transfers dominate and the tree
/// wins. From `xbench_sweep` at 4 PEs: linear wins up to 2 KiB payloads
/// (2706 vs 2861 cycles at 2 KiB), the tree wins from 32 KiB (30.4k vs
/// 39.1k cycles); the crossover sits between, at roughly 8 KiB.
const AUTO_TREE_MIN_BYTES: usize = 8 * 1024;

impl AlgorithmPolicy {
    /// Resolve the policy for one call. `nbytes` is the per-call payload
    /// (the strided message size in bytes). Deterministic in its inputs,
    /// so every PE of a collective resolves identically.
    pub fn select(self, kind: CollectiveKind, n_pes: usize, nbytes: usize) -> Algorithm {
        match self {
            AlgorithmPolicy::Binomial => Algorithm::Binomial,
            AlgorithmPolicy::Linear => Algorithm::Linear,
            AlgorithmPolicy::Ring => Algorithm::Ring,
            AlgorithmPolicy::Auto => auto_select(kind, n_pes, nbytes),
        }
    }
}

fn auto_select(kind: CollectiveKind, n_pes: usize, nbytes: usize) -> Algorithm {
    let _ = kind; // crossovers are shared across the four rooted collectives
    if n_pes <= AUTO_LINEAR_MAX_PES {
        Algorithm::Linear
    } else if n_pes >= AUTO_TREE_ALWAYS_PES || nbytes >= AUTO_TREE_MIN_BYTES {
        Algorithm::Binomial
    } else {
        Algorithm::Linear
    }
}

/// Broadcast algorithm selection when the executor's sync mode is known.
///
/// The binomial tree is bandwidth-bound at the root: the root injects
/// `⌈log2 n⌉` full copies back to back, and no synchronization scheme can
/// shorten that serialisation. The chain (ring) shape injects the payload
/// exactly once — but under per-stage barriers its `n − 1` hops serialise
/// into `(n − 1) · T`, which is why the barrier-mode `Auto` never picks
/// it. Segmented pipelining changes the trade: each hop forwards segment
/// `k` while segment `k + 1` is still arriving, so the chain completes in
/// roughly `T + (n − 2) · T_chunk`, beating the tree's `⌈log2 n⌉ · T`
/// root bottleneck once the payload is deep enough to pipeline
/// (`xbench_sweep`: 720k vs 818k cycles at 8 PEs / 512 KiB, 363k vs 478k
/// at 4 PEs). This is the calibrated coupling: `Auto` switches broadcast
/// to the chain exactly when the resolved mode pipelines and the payload
/// clears [`AUTO_PIPELINE_MIN_BYTES`].
fn auto_select_broadcast_sync(n_pes: usize, nbytes: usize, resolved: SyncMode) -> Algorithm {
    if resolved == SyncMode::Pipelined
        && n_pes > 2
        && n_pes <= AUTO_CHAIN_MAX_PES
        && nbytes >= AUTO_PIPELINE_MIN_BYTES
    {
        Algorithm::Ring
    } else {
        auto_select(CollectiveKind::Broadcast, n_pes, nbytes)
    }
}

/// Largest PE count at which `Auto` keeps the pipelined chain. Two
/// models pull in opposite directions above this point. The depth model
/// says the chain's linear term — `T + (n − 2) ·
/// T/`[`MAX_PIPELINE_CHUNKS`] — passes the tree's `⌈log2 n⌉ · T`
/// between 32 PEs (`4.75·T` vs `5·T`) and 64 (`8.75·T` vs `6·T`). The
/// measured `xbench_sweep --large` chain-cap rows (`BENCH_sweep.json`,
/// `large.chain_cap`) disagree: under the M/M/1 channel model the
/// tree's doubling fan-out saturates the links and the chain stays
/// ahead at 64 PEs (6.0M vs 9.2M cycles at 64 KiB) and 128 (3.9M vs
/// 18.6M), while at 16 the tree wins (1.55M vs 1.76M). The cap sits at
/// the edge of model agreement: through 32 PEs both say the chain is
/// at worst near-par (measured 3.20M vs 3.76M), beyond it `Auto`
/// prefers the tree's predictable log-depth over a 100+-hop failure
/// domain that only one model endorses.
const AUTO_CHAIN_MAX_PES: usize = 32;

/// Payload (bytes) from which `Auto` all-reduce abandons the full-vector
/// butterfly for a reduce-scatter-composed shape: below this the extra
/// stages cost more than the saved fold traffic. Calibrated from the
/// `xbench_sweep` allreduce grid: recursive doubling wins every 128-byte
/// cell, Rabenseifner already leads at 2 KiB (2792 vs 2985 cycles at
/// 4 PEs) — and at `n = 2`, where the two shapes coincide stage-for-stage
/// at small payloads, the halved fold traffic still wins from 8 KiB
/// (6839 vs 7873), so there is deliberately no small-`n` escape hatch.
pub(crate) const AUTO_ALLREDUCE_SEGMENT_MIN_BYTES: usize = 2 * 1024;

/// Payload (bytes) from which the ring's bandwidth-optimal `nelems/n`
/// segments beat Rabenseifner's halving splits (`xbench_sweep`: ring
/// leads the 64 KiB cells — 133610 vs 147566 cycles at 8 PEs — while
/// Rabenseifner still leads at 8 KiB).
pub(crate) const AUTO_ALLREDUCE_RING_MIN_BYTES: usize = 64 * 1024;

/// Largest PE count at which `Auto` all-reduce keeps the ring: its
/// `2·(n − 1)` stage depth grows linearly while Rabenseifner stays
/// logarithmic, the same depth-versus-injection trade as
/// [`AUTO_CHAIN_MAX_PES`].
pub(crate) const AUTO_ALLREDUCE_RING_MAX_PES: usize = 32;

/// Joint algorithm selection for all-reduce under
/// [`AllReduceAlgo::Auto`](crate::collectives::extended::AllReduceAlgo):
/// recursive doubling at small payloads (latency-bound, fewest stages
/// that still avoid the reduce-then-broadcast root bottleneck), ring at
/// large payloads and modest PE counts (bandwidth-optimal segments,
/// chunk-pipelinable puts), Rabenseifner everywhere else (log depth with
/// `~2/n` fold traffic). Crossovers calibrated from the `xbench_sweep`
/// allreduce grid (`allreduce_family_points` in `BENCH_sweep.json`).
pub fn auto_select_allreduce(
    n_pes: usize,
    nbytes: usize,
) -> crate::collectives::extended::AllReduceAlgo {
    use crate::collectives::extended::AllReduceAlgo;
    if nbytes < AUTO_ALLREDUCE_SEGMENT_MIN_BYTES {
        AllReduceAlgo::RecursiveDoubling
    } else if nbytes >= AUTO_ALLREDUCE_RING_MIN_BYTES && n_pes <= AUTO_ALLREDUCE_RING_MAX_PES {
        AllReduceAlgo::Ring
    } else {
        AllReduceAlgo::Rabenseifner
    }
}

/// Smallest PE count at which `Auto` all-gather switches from the
/// single-stage n² put fan to log-stage dissemination: the fan's one
/// stage is unbeatable on latency until its `n²` op count saturates the
/// fabric (`xbench_sweep` allgather rows: dissemination leads from 8 PEs
/// at every block size — 2120 vs 4093 cycles at 128-byte blocks —
/// decisively at ≥64).
pub(crate) const AUTO_ALLGATHER_DOUBLING_MIN_PES: usize = 8;

/// Per-PE block size (bytes) from which dissemination also wins *below*
/// the PE-count crossover: big blocks make the exchange bandwidth-bound,
/// and the fan pushes each contribution over `n − 1` separate wires
/// while dissemination forwards doubling aggregates (`xbench_sweep`:
/// 22043 vs 26302 cycles at 4 PEs × 8 KiB blocks).
pub(crate) const AUTO_ALLGATHER_DOUBLING_MIN_BYTES: usize = 8 * 1024;

/// Joint algorithm selection for all-gather under
/// [`AllGatherAlgo::Auto`](crate::collectives::extended::AllGatherAlgo).
/// PE count dominates the trade (op count scales n² vs n·log n); block
/// size decides the low-PE-count cells, where only bandwidth-bound
/// payloads make the extra dissemination stages pay.
pub fn auto_select_all_gather(
    n_pes: usize,
    nbytes: usize,
) -> crate::collectives::extended::AllGatherAlgo {
    use crate::collectives::extended::AllGatherAlgo;
    if n_pes >= AUTO_ALLGATHER_DOUBLING_MIN_PES || nbytes >= AUTO_ALLGATHER_DOUBLING_MIN_BYTES {
        AllGatherAlgo::RecursiveDoubling
    } else {
        AllGatherAlgo::Fan
    }
}

/// Count-skew (permille) above which `Auto` v-collectives abandon chain
/// and fan shapes for log-stage dissemination. Skew is measured as
/// `max(counts) · n · 1000 / total` — a uniform table scores exactly
/// 1000, and 2000 means one PE holds twice its fair share. Chain shapes
/// serialise every hop on whatever block is in flight, so a single giant
/// block is retransmitted `n − 1` times on the critical path; the fan
/// pushes it over `n − 1` separate wires from one root-side link.
/// Dissemination moves the giant block only `⌈log2 n⌉` times and each
/// time as part of a doubling aggregate, so its worst-case stage cost
/// grows with the *window* total rather than a single block — the same
/// observation Jocksch's non-uniform dissemination allgatherv is built
/// on.
pub(crate) const AUTO_VCOLL_SKEW_PERMILLE: u64 = 2000;

/// Total payload (bytes) from which the `Auto` allgatherv ring pays:
/// below it the ring's `n − 1` stage depth dominates; above it its
/// bandwidth-optimal per-stage injection (each PE forwards exactly one
/// block per stage) wins, mirroring the broadcast chain crossover at
/// [`AUTO_PIPELINE_MIN_BYTES`].
pub(crate) const AUTO_ALLGATHERV_RING_MIN_BYTES: usize = 64 * 1024;

/// Joint algorithm selection for allgatherv under
/// [`AllGatherVAlgo::Auto`](crate::collectives::vcoll::AllGatherVAlgo),
/// keyed on total bytes *and* count skew — the irregular axis the
/// uniform [`auto_select_all_gather`] doesn't have. High skew always
/// takes dissemination (see [`AUTO_VCOLL_SKEW_PERMILLE`]); near-uniform
/// tables follow the calibrated uniform crossovers: ring for
/// bandwidth-bound totals at modest PE counts, dissemination from the
/// n² fan-saturation point, fan for small latency-bound exchanges.
pub fn auto_select_allgatherv(
    n_pes: usize,
    total_bytes: usize,
    skew_permille: u64,
) -> crate::collectives::vcoll::AllGatherVAlgo {
    use crate::collectives::vcoll::AllGatherVAlgo;
    let per_pe_bytes = total_bytes / n_pes.max(1);
    if skew_permille >= AUTO_VCOLL_SKEW_PERMILLE {
        AllGatherVAlgo::Dissemination
    } else if total_bytes >= AUTO_ALLGATHERV_RING_MIN_BYTES
        && n_pes > 2
        && n_pes <= AUTO_CHAIN_MAX_PES
    {
        AllGatherVAlgo::Ring
    } else if n_pes >= AUTO_ALLGATHER_DOUBLING_MIN_PES
        || per_pe_bytes >= AUTO_ALLGATHER_DOUBLING_MIN_BYTES
    {
        AllGatherVAlgo::Dissemination
    } else {
        AllGatherVAlgo::Fan
    }
}

/// Algorithm selection for rooted v-collectives (scatterv/gatherv) under
/// [`AlgorithmPolicy::Auto`], keyed on total bytes, skew, and the
/// resolved sync mode. The chain shape is only worth its `n − 1` hop
/// depth when the executor pipelines, the total is bandwidth-bound, and
/// no single block dominates the chain (mirroring
/// [`auto_select_broadcast_sync`] with the skew guard added); otherwise
/// the uniform binomial/linear crossovers apply to the total payload.
pub fn auto_select_vrooted(
    kind: CollectiveKind,
    n_pes: usize,
    total_bytes: usize,
    skew_permille: u64,
    resolved: SyncMode,
) -> Algorithm {
    if resolved == SyncMode::Pipelined
        && n_pes > 2
        && n_pes <= AUTO_CHAIN_MAX_PES
        && total_bytes >= AUTO_PIPELINE_MIN_BYTES
        && skew_permille < AUTO_VCOLL_SKEW_PERMILLE
    {
        Algorithm::Ring
    } else {
        auto_select(kind, n_pes, total_bytes)
    }
}

/// Broadcast under `policy`: dispatches to the binomial tree
/// ([`broadcast::broadcast`]), [`baseline::broadcast_linear`], or
/// [`baseline::broadcast_ring`]. Same contract as the tree version.
pub fn broadcast_policy<T: XbrType>(
    pe: &Pe,
    dest: &SymmAlloc<T>,
    src: &[T],
    nelems: usize,
    stride: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    match policy.select(CollectiveKind::Broadcast, pe.n_pes(), nbytes) {
        Algorithm::Binomial => broadcast::broadcast(pe, dest, src, nelems, stride, root),
        Algorithm::Linear => baseline::broadcast_linear(pe, dest, src, nelems, stride, root),
        Algorithm::Ring => baseline::broadcast_ring(pe, dest, src, nelems, stride, root),
    }
}

/// Reduce under `policy` with a named operator; `Ring` falls back to
/// linear (reductions have no ring shape here).
#[allow(clippy::too_many_arguments)]
pub fn reduce_policy<T: XbrNumeric>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    stride: usize,
    root: usize,
    op: ReduceOp,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let f = op
        .combiner::<T>()
        .unwrap_or_else(|| panic!("reduction operator {op:?} requires a non-floating-point type"));
    match policy.select(CollectiveKind::Reduce, pe.n_pes(), nbytes) {
        Algorithm::Binomial => reduce::reduce_with(pe, dest, src, nelems, stride, root, f),
        Algorithm::Linear | Algorithm::Ring => {
            baseline::reduce_linear(pe, dest, src, nelems, stride, root, f)
        }
    }
}

/// Scatter under `policy`: the linear shape reuses the tree's staged
/// (virtual-rank-reordered) layout so irregular `pe_msgs`/`pe_disp`
/// semantics are identical; `Ring` falls back to linear.
#[allow(clippy::too_many_arguments)]
pub fn scatter_policy<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Scatter, pe.n_pes(), nbytes);
    scatter::scatter_impl(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo);
}

/// Gather under `policy`; `Ring` falls back to linear.
#[allow(clippy::too_many_arguments)]
pub fn gather_policy<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Gather, pe.n_pes(), nbytes);
    gather::gather_impl(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo);
}

/// [`broadcast_policy`] with an explicit executor [`SyncMode`]. Unlike
/// the barrier-only entry point, `Auto` here selects the algorithm
/// *jointly* with the resolved sync mode: a pipelined executor makes the
/// chain (ring) shape the bandwidth winner for large payloads (see
/// [`auto_select_broadcast_sync`]).
#[allow(clippy::too_many_arguments)]
pub fn broadcast_policy_sync<T: XbrType>(
    pe: &Pe,
    dest: &SymmAlloc<T>,
    src: &[T],
    nelems: usize,
    stride: usize,
    root: usize,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    // For broadcast every schedule op carries the full payload, so
    // resolving from `nbytes` here matches the executor's own
    // max-op-bytes resolution exactly.
    let resolved = sync.resolve(pe.n_pes(), nbytes);
    let algo = match policy {
        AlgorithmPolicy::Auto => auto_select_broadcast_sync(pe.n_pes(), nbytes, resolved),
        _ => policy.select(CollectiveKind::Broadcast, pe.n_pes(), nbytes),
    };
    // The *original* mode goes to the executor: it re-resolves `Auto`
    // with the schedule in hand (falling back to plain barriers for
    // single-stage shapes), which `resolved` above cannot know about.
    match algo {
        Algorithm::Binomial => broadcast::broadcast_sync(pe, dest, src, nelems, stride, root, sync),
        Algorithm::Linear => {
            baseline::broadcast_linear_sync(pe, dest, src, nelems, stride, root, sync)
        }
        Algorithm::Ring => baseline::broadcast_ring_sync(pe, dest, src, nelems, stride, root, sync),
    }
}

/// [`reduce_policy`] with an explicit executor [`SyncMode`].
#[allow(clippy::too_many_arguments)]
pub fn reduce_policy_sync<T: XbrNumeric>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    stride: usize,
    root: usize,
    op: ReduceOp,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let f = op
        .combiner::<T>()
        .unwrap_or_else(|| panic!("reduction operator {op:?} requires a non-floating-point type"));
    match policy.select(CollectiveKind::Reduce, pe.n_pes(), nbytes) {
        Algorithm::Binomial => {
            reduce::reduce_with_sync(pe, dest, src, nelems, stride, root, f, sync)
        }
        Algorithm::Linear | Algorithm::Ring => {
            baseline::reduce_linear_sync(pe, dest, src, nelems, stride, root, f, sync)
        }
    }
}

/// [`scatter_policy`] with an explicit executor [`SyncMode`].
#[allow(clippy::too_many_arguments)]
pub fn scatter_policy_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Scatter, pe.n_pes(), nbytes);
    scatter::scatter_impl_sync(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo, sync);
}

/// [`gather_policy`] with an explicit executor [`SyncMode`].
#[allow(clippy::too_many_arguments)]
pub fn gather_policy_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Gather, pe.n_pes(), nbytes);
    gather::gather_impl_sync(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo, sync);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};

    /// The measured `xbench_sweep` crossover cells the allreduce
    /// selector is calibrated against — each row a (n_pes, nbytes) cell
    /// and its winning family member.
    #[test]
    fn auto_allreduce_tracks_measured_crossovers() {
        use crate::collectives::extended::AllReduceAlgo as A;
        for (n, nbytes, want) in [
            (2usize, 128usize, A::RecursiveDoubling),
            (8, 128, A::RecursiveDoubling),
            (4, 2 * 1024, A::Rabenseifner),
            (2, 8 * 1024, A::Rabenseifner),
            (8, 8 * 1024, A::Rabenseifner),
            (4, 64 * 1024, A::Ring),
            (32, 64 * 1024, A::Ring),
            // Past the ring's stage-depth cap, bandwidth cells fall back
            // to the logarithmic shape.
            (64, 64 * 1024, A::Rabenseifner),
            (256, 512 * 1024, A::Rabenseifner),
        ] {
            assert_eq!(
                auto_select_allreduce(n, nbytes),
                want,
                "n={n} nbytes={nbytes}"
            );
        }
    }

    /// Same for the all-gather fan/dissemination crossover.
    #[test]
    fn auto_all_gather_tracks_measured_crossovers() {
        use crate::collectives::extended::AllGatherAlgo as G;
        for (n, nbytes, want) in [
            (2usize, 128usize, G::Fan),
            (4, 128, G::Fan),
            (4, 8 * 1024, G::RecursiveDoubling),
            (8, 128, G::RecursiveDoubling),
            (16, 128, G::RecursiveDoubling),
            (64, 8 * 1024, G::RecursiveDoubling),
        ] {
            assert_eq!(
                auto_select_all_gather(n, nbytes),
                want,
                "n={n} nbytes={nbytes}"
            );
        }
    }

    #[test]
    fn fixed_policies_are_constant() {
        for kind in CollectiveKind::ALL {
            for n in [1, 2, 8, 64] {
                for nbytes in [0, 100, 1 << 20] {
                    assert_eq!(
                        AlgorithmPolicy::Binomial.select(kind, n, nbytes),
                        Algorithm::Binomial
                    );
                    assert_eq!(
                        AlgorithmPolicy::Linear.select(kind, n, nbytes),
                        Algorithm::Linear
                    );
                    assert_eq!(
                        AlgorithmPolicy::Ring.select(kind, n, nbytes),
                        Algorithm::Ring
                    );
                }
            }
        }
    }

    #[test]
    fn auto_switches_on_size_and_scale() {
        let k = CollectiveKind::Broadcast;
        // Mid-scale (4 PEs): tiny messages stay linear, big ones go tree.
        assert_eq!(AlgorithmPolicy::Auto.select(k, 4, 8), Algorithm::Linear);
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 4, 1 << 20),
            Algorithm::Binomial
        );
        // At 8 PEs the serialised root loses at every size — always tree.
        assert_eq!(AlgorithmPolicy::Auto.select(k, 8, 8), Algorithm::Binomial);
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 8, 1 << 20),
            Algorithm::Binomial
        );
        // Two PEs never pay for tree staging.
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 2, 1 << 20),
            Algorithm::Linear
        );
    }

    #[test]
    fn auto_broadcast_goes_chain_only_when_pipelining_pays() {
        let big = 1 << 20;
        // Pipelined executor + deep payload → chain.
        assert_eq!(
            auto_select_broadcast_sync(8, big, SyncMode::Pipelined),
            Algorithm::Ring
        );
        assert_eq!(
            auto_select_broadcast_sync(8, big, SyncMode::Auto.resolve(8, big)),
            Algorithm::Ring
        );
        // Shallow payloads can't fill the pipeline — stay with the tree.
        assert_eq!(
            auto_select_broadcast_sync(8, 1 << 10, SyncMode::Pipelined),
            Algorithm::Binomial
        );
        // Barrier/signaled executors serialise the chain's n−1 hops.
        assert_eq!(
            auto_select_broadcast_sync(8, big, SyncMode::Barrier),
            Algorithm::Binomial
        );
        assert_eq!(
            auto_select_broadcast_sync(8, big, SyncMode::Signaled),
            Algorithm::Binomial
        );
        // Two PEs have no chain to pipeline.
        assert_eq!(
            auto_select_broadcast_sync(2, big, SyncMode::Pipelined),
            Algorithm::Linear
        );
    }

    #[test]
    fn auto_broadcast_chain_caps_out_at_large_pe_counts() {
        let big = 1 << 20;
        // Up to the cap the chain's single-injection shape still wins.
        assert_eq!(
            auto_select_broadcast_sync(32, big, SyncMode::Pipelined),
            Algorithm::Ring
        );
        // Past it the linear depth term `(n − 2) · T/8` overtakes the
        // tree's `⌈log2 n⌉ · T` and Auto must fall back to the tree,
        // however deep the payload.
        for n in [64usize, 256, 1024, 4096] {
            assert_eq!(
                auto_select_broadcast_sync(n, big, SyncMode::Pipelined),
                Algorithm::Binomial,
                "n_pes = {n}"
            );
            assert_eq!(
                auto_select_broadcast_sync(n, big, SyncMode::Auto.resolve(n, big)),
                Algorithm::Binomial,
                "n_pes = {n} (auto-resolved)"
            );
        }
    }

    #[test]
    fn policy_entry_points_agree_with_fixed_algorithms() {
        for policy in [
            AlgorithmPolicy::Binomial,
            AlgorithmPolicy::Linear,
            AlgorithmPolicy::Ring,
            AlgorithmPolicy::Auto,
        ] {
            let report = Fabric::run(FabricConfig::new(5), |pe| {
                let b = pe.shared_malloc::<u64>(4);
                broadcast_policy(pe, &b, &[5, 6, 7, 8], 4, 1, 3, policy);
                pe.barrier();

                let src = pe.shared_malloc::<i64>(2);
                pe.heap_write(src.whole(), &[pe.rank() as i64 + 1, 2]);
                pe.barrier();
                let mut sum = [0i64; 2];
                reduce_policy(pe, &mut sum, &src, 2, 1, 0, ReduceOp::Sum, policy);
                pe.barrier();

                let msgs = vec![2usize; 5];
                let disp: Vec<usize> = (0..5).map(|r| r * 2).collect();
                let full: Vec<u64> = (0..10).collect();
                let sc_src: Vec<u64> = if pe.rank() == 1 { full } else { vec![] };
                let mut mine = [0u64; 2];
                scatter_policy(pe, &mut mine, &sc_src, &msgs, &disp, 10, 1, policy);
                pe.barrier();
                let mut back = vec![0u64; 10];
                gather_policy(pe, &mut back, &mine, &msgs, &disp, 10, 1, policy);
                pe.barrier();
                (pe.heap_read_vec::<u64>(b.whole(), 4), sum, mine, back)
            });
            for (rank, (b, sum, mine, back)) in report.results.iter().enumerate() {
                assert_eq!(b, &vec![5, 6, 7, 8], "{policy:?}");
                if rank == 0 {
                    assert_eq!(sum, &[15, 10], "{policy:?}");
                }
                assert_eq!(mine, &[2 * rank as u64, 2 * rank as u64 + 1], "{policy:?}");
                if rank == 1 {
                    assert_eq!(back, &(0..10).collect::<Vec<u64>>(), "{policy:?}");
                }
            }
        }
    }
}
