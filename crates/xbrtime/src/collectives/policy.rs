//! Policy-driven algorithm selection.
//!
//! The paper's design discussion (§4.1–4.2) observes that *"there is no
//! universally optimal solution"* for a collective: latency-bound small
//! transfers and bandwidth-bound large transfers favour different
//! communication shapes, and production libraries switch algorithms at
//! runtime. This module provides that switch for our library: an
//! [`AlgorithmPolicy`] names either a fixed [`Algorithm`] or [`Auto`]
//! selection from `(collective, n_pes, message bytes)`, with crossover
//! constants calibrated against the `xbench_sweep` benchmark's cost-model
//! measurements (see `BENCH_sweep.json`).
//!
//! [`Auto`]: AlgorithmPolicy::Auto

use crate::collectives::{baseline, broadcast, gather, reduce, scatter};
use crate::fabric::{CollectiveKind, Pe, SymmAlloc};
use crate::types::{ReduceOp, XbrNumeric, XbrType};

/// A concrete collective algorithm shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Binomial tree with recursive halving/doubling (paper Algorithms 1–4).
    #[default]
    Binomial,
    /// Root-sequential: the root exchanges with every peer in one stage.
    Linear,
    /// Neighbour-to-neighbour pipeline in `n − 1` stages (broadcast only;
    /// collectives without a ring shape fall back to linear).
    Ring,
}

impl Algorithm {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Binomial => "binomial",
            Algorithm::Linear => "linear",
            Algorithm::Ring => "ring",
        }
    }
}

/// How the library picks an [`Algorithm`] for each call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AlgorithmPolicy {
    /// Always the paper's binomial tree.
    #[default]
    Binomial,
    /// Always root-sequential.
    Linear,
    /// Always ring (where a ring shape exists).
    Ring,
    /// Pick per call from `(collective, n_pes, nbytes)` using the
    /// calibrated crossovers in [`AlgorithmPolicy::select`].
    Auto,
}

/// With 2 PEs every shape degenerates to one transfer and the swept
/// cycles are identical across algorithms; `Auto` goes linear (one stage,
/// one barrier, no tree bookkeeping).
const AUTO_LINEAR_MAX_PES: usize = 2;

/// From this PE count up the root's serialised `n − 1` transfers dominate
/// at *every* swept payload, so `Auto` always takes the tree. Calibrated
/// from `xbench_sweep` on the paper cost model: at 8 PEs binomial beats
/// linear already at 8-byte broadcasts (2176 vs 2392 cycles) and the gap
/// widens with size (793k vs 1296k at 512 KiB).
const AUTO_TREE_ALWAYS_PES: usize = 8;

/// Calibrated payload crossover (bytes) for the intermediate PE counts:
/// under it the tree's `⌈log2 n⌉` stage barriers dominate and linear
/// wins; above it the root's serialised transfers dominate and the tree
/// wins. From `xbench_sweep` at 4 PEs: linear wins up to 2 KiB payloads
/// (2706 vs 2861 cycles at 2 KiB), the tree wins from 32 KiB (30.4k vs
/// 39.1k cycles); the crossover sits between, at roughly 8 KiB.
const AUTO_TREE_MIN_BYTES: usize = 8 * 1024;

impl AlgorithmPolicy {
    /// Resolve the policy for one call. `nbytes` is the per-call payload
    /// (the strided message size in bytes). Deterministic in its inputs,
    /// so every PE of a collective resolves identically.
    pub fn select(self, kind: CollectiveKind, n_pes: usize, nbytes: usize) -> Algorithm {
        match self {
            AlgorithmPolicy::Binomial => Algorithm::Binomial,
            AlgorithmPolicy::Linear => Algorithm::Linear,
            AlgorithmPolicy::Ring => Algorithm::Ring,
            AlgorithmPolicy::Auto => auto_select(kind, n_pes, nbytes),
        }
    }
}

fn auto_select(kind: CollectiveKind, n_pes: usize, nbytes: usize) -> Algorithm {
    let _ = kind; // crossovers are shared across the four rooted collectives
    if n_pes <= AUTO_LINEAR_MAX_PES {
        Algorithm::Linear
    } else if n_pes >= AUTO_TREE_ALWAYS_PES || nbytes >= AUTO_TREE_MIN_BYTES {
        Algorithm::Binomial
    } else {
        Algorithm::Linear
    }
}

/// Broadcast under `policy`: dispatches to the binomial tree
/// ([`broadcast::broadcast`]), [`baseline::broadcast_linear`], or
/// [`baseline::broadcast_ring`]. Same contract as the tree version.
pub fn broadcast_policy<T: XbrType>(
    pe: &Pe,
    dest: &SymmAlloc<T>,
    src: &[T],
    nelems: usize,
    stride: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    match policy.select(CollectiveKind::Broadcast, pe.n_pes(), nbytes) {
        Algorithm::Binomial => broadcast::broadcast(pe, dest, src, nelems, stride, root),
        Algorithm::Linear => baseline::broadcast_linear(pe, dest, src, nelems, stride, root),
        Algorithm::Ring => baseline::broadcast_ring(pe, dest, src, nelems, stride, root),
    }
}

/// Reduce under `policy` with a named operator; `Ring` falls back to
/// linear (reductions have no ring shape here).
#[allow(clippy::too_many_arguments)]
pub fn reduce_policy<T: XbrNumeric>(
    pe: &Pe,
    dest: &mut [T],
    src: &SymmAlloc<T>,
    nelems: usize,
    stride: usize,
    root: usize,
    op: ReduceOp,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let f = op
        .combiner::<T>()
        .unwrap_or_else(|| panic!("reduction operator {op:?} requires a non-floating-point type"));
    match policy.select(CollectiveKind::Reduce, pe.n_pes(), nbytes) {
        Algorithm::Binomial => reduce::reduce_with(pe, dest, src, nelems, stride, root, f),
        Algorithm::Linear | Algorithm::Ring => {
            baseline::reduce_linear(pe, dest, src, nelems, stride, root, f)
        }
    }
}

/// Scatter under `policy`: the linear shape reuses the tree's staged
/// (virtual-rank-reordered) layout so irregular `pe_msgs`/`pe_disp`
/// semantics are identical; `Ring` falls back to linear.
#[allow(clippy::too_many_arguments)]
pub fn scatter_policy<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Scatter, pe.n_pes(), nbytes);
    scatter::scatter_impl(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo);
}

/// Gather under `policy`; `Ring` falls back to linear.
#[allow(clippy::too_many_arguments)]
pub fn gather_policy<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    pe_msgs: &[usize],
    pe_disp: &[usize],
    nelems: usize,
    root: usize,
    policy: AlgorithmPolicy,
) {
    let nbytes = nelems * std::mem::size_of::<T>();
    let algo = policy.select(CollectiveKind::Gather, pe.n_pes(), nbytes);
    gather::gather_impl(pe, dest, src, pe_msgs, pe_disp, nelems, root, algo);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};

    #[test]
    fn fixed_policies_are_constant() {
        for kind in CollectiveKind::ALL {
            for n in [1, 2, 8, 64] {
                for nbytes in [0, 100, 1 << 20] {
                    assert_eq!(
                        AlgorithmPolicy::Binomial.select(kind, n, nbytes),
                        Algorithm::Binomial
                    );
                    assert_eq!(
                        AlgorithmPolicy::Linear.select(kind, n, nbytes),
                        Algorithm::Linear
                    );
                    assert_eq!(
                        AlgorithmPolicy::Ring.select(kind, n, nbytes),
                        Algorithm::Ring
                    );
                }
            }
        }
    }

    #[test]
    fn auto_switches_on_size_and_scale() {
        let k = CollectiveKind::Broadcast;
        // Mid-scale (4 PEs): tiny messages stay linear, big ones go tree.
        assert_eq!(AlgorithmPolicy::Auto.select(k, 4, 8), Algorithm::Linear);
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 4, 1 << 20),
            Algorithm::Binomial
        );
        // At 8 PEs the serialised root loses at every size — always tree.
        assert_eq!(AlgorithmPolicy::Auto.select(k, 8, 8), Algorithm::Binomial);
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 8, 1 << 20),
            Algorithm::Binomial
        );
        // Two PEs never pay for tree staging.
        assert_eq!(
            AlgorithmPolicy::Auto.select(k, 2, 1 << 20),
            Algorithm::Linear
        );
    }

    #[test]
    fn policy_entry_points_agree_with_fixed_algorithms() {
        for policy in [
            AlgorithmPolicy::Binomial,
            AlgorithmPolicy::Linear,
            AlgorithmPolicy::Ring,
            AlgorithmPolicy::Auto,
        ] {
            let report = Fabric::run(FabricConfig::new(5), |pe| {
                let b = pe.shared_malloc::<u64>(4);
                broadcast_policy(pe, &b, &[5, 6, 7, 8], 4, 1, 3, policy);
                pe.barrier();

                let src = pe.shared_malloc::<i64>(2);
                pe.heap_write(src.whole(), &[pe.rank() as i64 + 1, 2]);
                pe.barrier();
                let mut sum = [0i64; 2];
                reduce_policy(pe, &mut sum, &src, 2, 1, 0, ReduceOp::Sum, policy);
                pe.barrier();

                let msgs = vec![2usize; 5];
                let disp: Vec<usize> = (0..5).map(|r| r * 2).collect();
                let full: Vec<u64> = (0..10).collect();
                let sc_src: Vec<u64> = if pe.rank() == 1 { full } else { vec![] };
                let mut mine = [0u64; 2];
                scatter_policy(pe, &mut mine, &sc_src, &msgs, &disp, 10, 1, policy);
                pe.barrier();
                let mut back = vec![0u64; 10];
                gather_policy(pe, &mut back, &mine, &msgs, &disp, 10, 1, policy);
                pe.barrier();
                (pe.heap_read_vec::<u64>(b.whole(), 4), sum, mine, back)
            });
            for (rank, (b, sum, mine, back)) in report.results.iter().enumerate() {
                assert_eq!(b, &vec![5, 6, 7, 8], "{policy:?}");
                if rank == 0 {
                    assert_eq!(sum, &[15, 10], "{policy:?}");
                }
                assert_eq!(mine, &[2 * rank as u64, 2 * rank as u64 + 1], "{policy:?}");
                if rank == 1 {
                    assert_eq!(back, &(0..10).collect::<Vec<u64>>(), "{policy:?}");
                }
            }
        }
    }
}
