//! The deterministic interleaving explorer and the schedule mutation
//! harness.
//!
//! The oracle in [`verify`](crate::collectives::verify) checks one
//! interleaving; this module drives the same compiled programs through
//! *many*. Everything is single-threaded and cooperative — a scheduler
//! picks which PE steps next from the enabled set — so every ordering
//! bug reproduces from `(seed, config)` alone, with no wall-clock or
//! platform dependence anywhere in the loop:
//!
//! * [`RoundRobin`] — the canonical fair interleaving;
//! * [`RandomPriority`] — a PCT-style randomised-priority scheduler
//!   driven by [`SplitMix64`], whose `u64`-only arithmetic makes the
//!   schedule stream identical on every platform;
//! * [`explore_exhaustive`] — depth-first enumeration of *all*
//!   interleavings (with state-hash memoisation), feasible for the
//!   model-checking configurations CI runs (`n_pes ≤ 4`, a few
//!   elements).
//!
//! The mutation harness closes the loop on the oracle itself: it
//! derives schedule mutants that each break one real dependency
//! (conflict-analysed, so equivalent mutants are not generated) and
//! asserts the oracle flags every one — a surviving mutant means a
//! dependency class the checks cannot see.

use std::collections::HashSet;

use crate::collectives::policy::SyncMode;
use crate::collectives::schedule::{CommSchedule, OpKind, TransferOp};
use crate::collectives::verify::{
    check_schedule, compare, compile, CollectiveSpec, ConformanceReport, DeadlockInfo, Machine,
    Mismatch, ModelConfig, Program, Space,
};
use crate::timing::SplitMix64;

// ---------------------------------------------------------------------------
// Schedulers.
// ---------------------------------------------------------------------------

/// A deterministic interleaving policy: given the enabled ranks, pick
/// which PE steps next.
pub trait Scheduler {
    /// Choose one rank from `enabled` (never empty).
    fn pick(&mut self, enabled: &[usize]) -> usize;
    /// Human-readable identity for reports.
    fn describe(&self) -> String;
}

/// Fair rotation through the enabled set.
#[derive(Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        let pe = enabled[self.cursor % enabled.len()];
        self.cursor = self.cursor.wrapping_add(1);
        pe
    }

    fn describe(&self) -> String {
        "round-robin".into()
    }
}

/// PCT-style randomised priorities: each PE carries a random priority,
/// the highest-priority enabled PE runs, and priorities are occasionally
/// reshuffled at points drawn from the same stream. All decisions come
/// from a [`SplitMix64`] stream of `u64`s, so a `(seed, n_pes)` pair
/// produces the identical interleaving on every platform (golden-seed
/// pinned in `tests/conformance.rs`).
pub struct RandomPriority {
    seed: u64,
    rng: SplitMix64,
    prio: Vec<u64>,
}

impl RandomPriority {
    /// Scheduler for a world of `n_pes`, fully determined by `seed`.
    pub fn new(seed: u64, n_pes: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let prio = (0..n_pes).map(|_| rng.next_u64()).collect();
        RandomPriority { seed, rng, prio }
    }
}

impl Scheduler for RandomPriority {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        // Priority change point roughly every 16 picks.
        if self.rng.pick(16) == 0 {
            let pe = self.rng.pick(self.prio.len() as u64) as usize;
            self.prio[pe] = self.rng.next_u64();
        }
        *enabled
            .iter()
            .max_by_key(|&&pe| (self.prio[pe], pe))
            .expect("pick from an empty enabled set")
    }

    fn describe(&self) -> String {
        format!("random-priority(seed={:#x})", self.seed)
    }
}

/// Compile `sched` under `sync` and run one full interleaving chosen by
/// `scheduler`, with the vector-clock plane attached.
pub fn check_with_scheduler(
    sched: &CommSchedule,
    sync: SyncMode,
    spec: &CollectiveSpec,
    cfg: &ModelConfig,
    scheduler: &mut dyn Scheduler,
) -> ConformanceReport {
    let prog = compile(sched, sync, cfg);
    crate::collectives::verify::run_with(&prog, spec, |enabled| scheduler.pick(enabled))
}

// ---------------------------------------------------------------------------
// Exhaustive exploration.
// ---------------------------------------------------------------------------

/// Bounds for the exhaustive explorer.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Visited-state budget; exceeding it sets
    /// [`ExploreOutcome::truncated`] instead of silently passing.
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 500_000,
        }
    }
}

/// How one explored interleaving failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// No PE could step but the programs had not completed.
    Deadlock(DeadlockInfo),
    /// A completed interleaving disagreed with the dense reference.
    Mismatch(Vec<Mismatch>),
    /// A completed interleaving left signal slots raised.
    StrandedSignals(Vec<usize>),
}

/// A failing interleaving, with the PE choice sequence that reproduces
/// it step for step.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The scheduler decisions leading to the failure.
    pub trace: Vec<usize>,
}

/// Result of an exhaustive exploration.
pub struct ExploreOutcome {
    /// Concrete sync mode explored.
    pub sync: SyncMode,
    /// Distinct states visited.
    pub states: usize,
    /// Complete interleavings reaching the final state.
    pub complete_runs: usize,
    /// Set when the state budget ran out before the space was covered.
    pub truncated: bool,
    /// First failure found, if any.
    pub failure: Option<ExploreFailure>,
}

impl ExploreOutcome {
    /// `true` when the whole space was covered and every interleaving
    /// conformed. A truncated run is *not* ok — a pass must mean the
    /// space was actually exhausted.
    pub fn ok(&self) -> bool {
        self.failure.is_none() && !self.truncated
    }

    /// One-line summary for harness tables.
    pub fn summary(&self) -> String {
        match &self.failure {
            Some(f) => {
                let what = match &f.kind {
                    FailureKind::Deadlock(d) => format!("deadlock ({} blocked)", d.blocked.len()),
                    FailureKind::Mismatch(m) => format!("{} mismatches", m.len()),
                    FailureKind::StrandedSignals(s) => format!("{} stranded signals", s.len()),
                };
                format!(
                    "{what} after {} states, trace len {}",
                    self.states,
                    f.trace.len()
                )
            }
            None if self.truncated => format!("truncated at {} states", self.states),
            None => format!(
                "ok ({} states, {} complete runs, {})",
                self.states,
                self.complete_runs,
                self.sync.name()
            ),
        }
    }
}

struct Frame {
    m: Machine,
    enabled: Vec<usize>,
    next: usize,
    led_by: Option<usize>,
}

/// Depth-first enumeration of every interleaving of `sched` under
/// `sync`, memoised on the functional state hash. Each complete run is
/// checked against `spec` and the all-slots-clear invariant; any wedged
/// state is reported as a deadlock with its reproducing trace.
pub fn explore_exhaustive(
    sched: &CommSchedule,
    sync: SyncMode,
    spec: &CollectiveSpec,
    cfg: &ModelConfig,
    ecfg: &ExploreConfig,
) -> ExploreOutcome {
    let prog = compile(sched, sync, cfg);
    let exp = prog.expectation(spec);
    let mut visited: HashSet<u64> = HashSet::new();
    let mut complete_runs = 0usize;
    let mut truncated = false;

    let m0 = Machine::new(&prog);
    let trace_of = |stack: &[Frame], last: usize| -> Vec<usize> {
        let mut t: Vec<usize> = stack.iter().filter_map(|f| f.led_by).collect();
        t.push(last);
        t
    };

    let mut stack = Vec::new();
    if !m0.all_done(&prog) {
        let enabled = m0.enabled(&prog);
        if enabled.is_empty() {
            let info = m0.deadlock_info(&prog);
            return ExploreOutcome {
                sync: prog.sync,
                states: 1,
                complete_runs: 0,
                truncated: false,
                failure: Some(ExploreFailure {
                    kind: FailureKind::Deadlock(info),
                    trace: Vec::new(),
                }),
            };
        }
        visited.insert(m0.state_hash());
        stack.push(Frame {
            m: m0,
            enabled,
            next: 0,
            led_by: None,
        });
    } else {
        complete_runs = 1;
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.enabled.len() {
            stack.pop();
            continue;
        }
        let pe = top.enabled[top.next];
        top.next += 1;
        let mut m = top.m.clone();
        m.step(&prog, pe, None);

        if m.all_done(&prog) {
            complete_runs += 1;
            let stranded = m.stranded_slots();
            if !stranded.is_empty() {
                let trace = trace_of(&stack, pe);
                return failure_outcome(
                    &prog,
                    visited.len(),
                    complete_runs,
                    FailureKind::StrandedSignals(stranded),
                    trace,
                );
            }
            let mismatches = compare(&m, &exp);
            if !mismatches.is_empty() {
                let trace = trace_of(&stack, pe);
                return failure_outcome(
                    &prog,
                    visited.len(),
                    complete_runs,
                    FailureKind::Mismatch(mismatches),
                    trace,
                );
            }
            continue;
        }

        if !visited.insert(m.state_hash()) {
            continue;
        }
        if visited.len() > ecfg.max_states {
            truncated = true;
            break;
        }
        let enabled = m.enabled(&prog);
        if enabled.is_empty() {
            let info = m.deadlock_info(&prog);
            let trace = trace_of(&stack, pe);
            return failure_outcome(
                &prog,
                visited.len(),
                complete_runs,
                FailureKind::Deadlock(info),
                trace,
            );
        }
        stack.push(Frame {
            m,
            enabled,
            next: 0,
            led_by: Some(pe),
        });
    }

    ExploreOutcome {
        sync: prog.sync,
        states: visited.len(),
        complete_runs,
        truncated,
        failure: None,
    }
}

fn failure_outcome(
    prog: &Program,
    states: usize,
    complete_runs: usize,
    kind: FailureKind,
    trace: Vec<usize>,
) -> ExploreOutcome {
    ExploreOutcome {
        sync: prog.sync,
        states,
        complete_runs,
        truncated: false,
        failure: Some(ExploreFailure { kind, trace }),
    }
}

/// Replay a recorded failure trace and return the resulting report —
/// the reproducibility half of the explorer's contract: a failure is
/// identified by `(schedule, sync, config, trace)` alone.
pub fn replay_trace(
    sched: &CommSchedule,
    sync: SyncMode,
    spec: &CollectiveSpec,
    cfg: &ModelConfig,
    trace: &[usize],
) -> ConformanceReport {
    let prog = compile(sched, sync, cfg);
    let mut i = 0usize;
    crate::collectives::verify::run_with(&prog, spec, |enabled| {
        let pe = trace.get(i).copied().unwrap_or(enabled[0]);
        i += 1;
        if enabled.contains(&pe) {
            pe
        } else {
            enabled[0]
        }
    })
}

// ---------------------------------------------------------------------------
// Mutation harness.
// ---------------------------------------------------------------------------

/// One schedule mutation: a single dropped or reordered dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Move `stages[stage].ops[op]` into the previous stage, erasing the
    /// inter-stage dependency edge that ordered it.
    Hoist {
        /// Stage the op is hoisted out of.
        stage: usize,
        /// Op index within that stage.
        op: usize,
    },
    /// Swap adjacent stages `stage` and `stage + 1`, reversing every
    /// dependency between them.
    SwapStages {
        /// The earlier of the two swapped stages.
        stage: usize,
    },
    /// Concatenate stage `stage + 1` onto `stage`, dropping the barrier
    /// or signal edges between them.
    MergeStages {
        /// The stage merged into.
        stage: usize,
    },
    /// Clear a stage's `deferred_fold` flag, dropping the read-ack edges
    /// that let partners exchange segments symmetrically.
    Undefer {
        /// The deferred stage.
        stage: usize,
    },
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::Hoist { stage, op } => write!(f, "hoist stage {stage} op {op}"),
            Mutation::SwapStages { stage } => write!(f, "swap stages {stage}/{}", stage + 1),
            Mutation::MergeStages { stage } => write!(f, "merge stages {stage}/{}", stage + 1),
            Mutation::Undefer { stage } => write!(f, "undefer stage {stage}"),
        }
    }
}

/// Apply `m` to a copy of `sched`.
pub fn apply_mutation(sched: &CommSchedule, m: &Mutation) -> CommSchedule {
    let mut out = sched.clone();
    match *m {
        Mutation::Hoist { stage, op } => {
            let moved = out.stages[stage].ops.remove(op);
            out.stages[stage - 1].ops.push(moved);
        }
        Mutation::SwapStages { stage } => out.stages.swap(stage, stage + 1),
        Mutation::MergeStages { stage } => {
            let tail = out.stages.remove(stage + 1);
            out.stages[stage].ops.extend(tail.ops);
        }
        Mutation::Undefer { stage } => out.stages[stage].deferred_fold = false,
    }
    out
}

#[derive(Clone, Copy)]
struct Region {
    space: Space,
    pe: usize,
    start: usize,
    end: usize,
    write: bool,
    /// A fold's read-modify-write accumulator window. Two accumulator
    /// accesses commute (multiset merge), so acc↔acc overlap is not an
    /// ordering dependency.
    acc: bool,
}

impl Region {
    fn overlaps(&self, o: &Region) -> bool {
        self.space == o.space && self.pe == o.pe && self.start < o.end && o.start < self.end
    }
}

/// Element regions one op touches, conservatively spanning strided
/// windows and tagged read/write/accumulator.
fn accesses(op: &TransferOp) -> Vec<Region> {
    let span = op.span();
    let me = op.issuer();
    let reg = |space: Space, pe: usize, at: usize, write: bool, acc: bool| Region {
        space,
        pe,
        start: at,
        end: at + span,
        write,
        acc,
    };
    match op.kind {
        OpKind::Put | OpKind::Get => vec![
            reg(Space::Sym, op.src_pe, op.src_at, false, false),
            reg(Space::Sym, op.dst_pe, op.dst_at, true, false),
        ],
        OpKind::PutFrom | OpKind::PutNb => vec![
            reg(Space::LocalSrc, me, op.src_at, false, false),
            reg(Space::Sym, op.dst_pe, op.dst_at, true, false),
        ],
        OpKind::GetInto => vec![
            reg(Space::Sym, op.src_pe, op.src_at, false, false),
            reg(Space::LocalDst, me, op.dst_at, true, false),
        ],
        OpKind::GetFold => vec![
            reg(Space::Sym, op.src_pe, op.src_at, false, false),
            reg(Space::Sym, me, op.dst_at, true, true),
        ],
        OpKind::GetFoldInto => vec![
            reg(Space::Sym, op.src_pe, op.src_at, false, false),
            reg(Space::LocalDst, me, op.dst_at, true, true),
        ],
    }
}

/// `true` when reordering `a` against `b` can change an outcome: some
/// write of one overlaps an access of the other, excluding
/// accumulator↔accumulator pairs — folds into a shared destination
/// commute under the multiset merge, so swapping two such stages yields
/// an equivalent schedule, not a broken one.
fn conflicts(a: &TransferOp, b: &TransferOp) -> bool {
    if a.nelems == 0 || b.nelems == 0 {
        return false;
    }
    let ra = accesses(a);
    let rb = accesses(b);
    ra.iter().any(|x| {
        rb.iter()
            .any(|y| x.overlaps(y) && (x.write || y.write) && !(x.acc && y.acc))
    })
}

/// Derive the dependency-breaking mutants of `sched`. Only mutations
/// that sever a *real* cross-PE ordering edge are produced — a hoist or
/// merge whose conflicting ops share an issuer keeps program order and
/// would survive legitimately, so it is filtered out; a swap reverses
/// even same-issuer dependencies, so those stay in.
pub fn generate_mutations(sched: &CommSchedule) -> Vec<Mutation> {
    let mut out = Vec::new();
    let stages = &sched.stages;
    for s in 0..stages.len() {
        if s + 1 < stages.len() {
            // Two adjacent deferred stages are butterfly dimensions:
            // each is a complete symmetric exchange, so their order only
            // permutes merge operands — swapping them is equivalent.
            let both_deferred = stages[s].deferred_fold && stages[s + 1].deferred_fold;
            let cross = stages[s]
                .ops
                .iter()
                .any(|a| stages[s + 1].ops.iter().any(|b| conflicts(a, b)));
            if cross && !both_deferred {
                out.push(Mutation::SwapStages { stage: s });
            }
            if !stages[s].deferred_fold && !stages[s + 1].deferred_fold {
                let cross_pe = stages[s].ops.iter().any(|a| {
                    stages[s + 1]
                        .ops
                        .iter()
                        .any(|b| a.issuer() != b.issuer() && conflicts(a, b))
                });
                if cross_pe {
                    out.push(Mutation::MergeStages { stage: s });
                }
            }
        }
        if s > 0 && !stages[s].deferred_fold && !stages[s - 1].deferred_fold {
            for (oi, op) in stages[s].ops.iter().enumerate() {
                let dep = stages[s - 1]
                    .ops
                    .iter()
                    .any(|b| b.issuer() != op.issuer() && conflicts(op, b));
                if dep {
                    out.push(Mutation::Hoist { stage: s, op: oi });
                }
            }
        }
        if stages[s].deferred_fold {
            let ops = &stages[s].ops;
            let cross = ops.iter().enumerate().any(|(i, a)| {
                ops.iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a.issuer() != b.issuer() && conflicts(a, b))
            });
            if cross {
                out.push(Mutation::Undefer { stage: s });
            }
        }
    }
    out
}

/// Verdict on one `(mutant, sync mode)` pair.
pub struct MutationOutcome {
    /// The mutation applied.
    pub mutation: Mutation,
    /// Sync mode the mutant was checked under.
    pub sync: SyncMode,
    /// Whether any oracle plane flagged it.
    pub killed: bool,
    /// Which plane killed it (or why it survived).
    pub how: String,
}

/// Aggregate harness result.
pub struct MutationReport {
    /// Every `(mutant, mode)` verdict.
    pub outcomes: Vec<MutationOutcome>,
}

impl MutationReport {
    /// Fraction of `(mutant, mode)` pairs the oracle flagged.
    pub fn kill_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let killed = self.outcomes.iter().filter(|o| o.killed).count();
        killed as f64 / self.outcomes.len() as f64
    }

    /// The surviving pairs, for justification in harness output.
    pub fn survivors(&self) -> impl Iterator<Item = &MutationOutcome> {
        self.outcomes.iter().filter(|o| !o.killed)
    }
}

/// Run every generated mutant of `sched` through the oracle under each
/// mode in `modes`: first the canonical vector-clock run, then — if that
/// passes — exhaustive exploration. A mutant is killed when either plane
/// flags it.
pub fn run_mutation_harness(
    sched: &CommSchedule,
    spec: &CollectiveSpec,
    cfg: &ModelConfig,
    modes: &[SyncMode],
    ecfg: &ExploreConfig,
) -> MutationReport {
    let mut outcomes = Vec::new();
    for mutation in generate_mutations(sched) {
        let mutant = apply_mutation(sched, &mutation);
        for &sync in modes {
            let canonical = check_schedule(&mutant, sync, spec, cfg);
            if !canonical.ok() {
                outcomes.push(MutationOutcome {
                    mutation: mutation.clone(),
                    sync,
                    killed: true,
                    how: format!("canonical: {}", canonical.summary()),
                });
                continue;
            }
            let explored = explore_exhaustive(&mutant, sync, spec, cfg, ecfg);
            let (killed, how) = match (&explored.failure, explored.truncated) {
                (Some(_), _) => (true, format!("explored: {}", explored.summary())),
                (None, true) => (false, format!("survived: {}", explored.summary())),
                (None, false) => (false, format!("survived: {}", explored.summary())),
            };
            outcomes.push(MutationOutcome {
                mutation: mutation.clone(),
                sync,
                killed,
                how,
            });
        }
    }
    MutationReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::schedule::{broadcast_binomial, reduce_binomial, Stage};
    use crate::fabric::CollectiveKind;

    #[test]
    fn exhaustive_passes_correct_generators() {
        let cfg = ModelConfig::default();
        let ecfg = ExploreConfig::default();
        for n in 2..=4usize {
            for sync in SyncMode::CONCRETE {
                let sched = broadcast_binomial(n, 0, 2, 1);
                let spec = CollectiveSpec::Broadcast {
                    root: 0,
                    nelems: 2,
                    stride: 1,
                };
                let out = explore_exhaustive(&sched, sync, &spec, &cfg, &ecfg);
                assert!(out.ok(), "bcast n={n} {}: {}", sync.name(), out.summary());

                let red = reduce_binomial(n, 0, 2, 1);
                let rspec = CollectiveSpec::ReduceTree {
                    root: 0,
                    nelems: 2,
                    stride: 1,
                };
                let out = explore_exhaustive(&red, sync, &rspec, &cfg, &ecfg);
                assert!(out.ok(), "reduce n={n} {}: {}", sync.name(), out.summary());
            }
        }
    }

    #[test]
    fn explorer_finds_and_replays_ordering_bug() {
        // Merge both stages of a 4-PE binomial broadcast: some
        // interleaving lets the forwarder send stale data.
        let good = broadcast_binomial(4, 0, 1, 1);
        let mut ops = Vec::new();
        for st in &good.stages {
            ops.extend(st.ops.iter().copied());
        }
        let bad = CommSchedule {
            n_pes: 4,
            kind: CollectiveKind::Broadcast,
            stages: vec![Stage::new(ops)],
        };
        let spec = CollectiveSpec::Broadcast {
            root: 0,
            nelems: 1,
            stride: 1,
        };
        let cfg = ModelConfig::default();
        let out = explore_exhaustive(
            &bad,
            SyncMode::Barrier,
            &spec,
            &cfg,
            &ExploreConfig::default(),
        );
        let failure = out
            .failure
            .expect("merged stages must fail some interleaving");
        // Determinism: a second exploration finds the identical trace.
        let again = explore_exhaustive(
            &bad,
            SyncMode::Barrier,
            &spec,
            &cfg,
            &ExploreConfig::default(),
        );
        assert_eq!(failure.trace, again.failure.expect("still fails").trace);
        // Reproducibility: replaying the trace exhibits the failure too.
        let replay = replay_trace(&bad, SyncMode::Barrier, &spec, &cfg, &failure.trace);
        assert!(!replay.ok(), "replayed trace must reproduce the failure");
    }

    #[test]
    fn random_priority_is_deterministic() {
        let sched = broadcast_binomial(4, 0, 3, 1);
        let spec = CollectiveSpec::Broadcast {
            root: 0,
            nelems: 3,
            stride: 1,
        };
        let cfg = ModelConfig::default();
        let run = |seed: u64| {
            let mut s = RandomPriority::new(seed, 4);
            check_with_scheduler(&sched, SyncMode::Signaled, &spec, &cfg, &mut s)
        };
        let (a, b) = (run(7), run(7));
        assert!(a.ok() && b.ok());
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn mutation_harness_kills_all_broadcast_mutants() {
        let sched = broadcast_binomial(4, 0, 2, 1);
        let spec = CollectiveSpec::Broadcast {
            root: 0,
            nelems: 2,
            stride: 1,
        };
        let report = run_mutation_harness(
            &sched,
            &spec,
            &ModelConfig::default(),
            &SyncMode::CONCRETE,
            &ExploreConfig::default(),
        );
        assert!(!report.outcomes.is_empty(), "no mutants generated");
        if let Some(o) = report.survivors().next() {
            panic!(
                "survivor: {} under {}: {}",
                o.mutation,
                o.sync.name(),
                o.how
            );
        }
        assert_eq!(report.kill_rate(), 1.0);
    }
}
