//! Irregular (v-variant) collectives — `scatterv`, `gatherv`,
//! `allgatherv` with per-PE counts and displacements.
//!
//! The paper's Table 1 promises scatterv/gatherv-style irregularity and
//! the uniform generators already thread arbitrary adjusted-displacement
//! tables through the binomial/linear shapes; this module completes the
//! family with chain (ring) shapes for the rooted v-collectives and an
//! allgatherv whose blocks differ per PE — including a non-uniform
//! log-stage dissemination schedule in the spirit of Jocksch et al.'s
//! optimised allgatherv algorithms.
//!
//! Everything here follows the repo's schedule/executor split: each
//! generator is a pure function from a displacement table to a
//! [`CommSchedule`], checkable by the conformance oracle and the
//! interleaving explorer without a fabric. The entry points reuse the
//! scatter/gather staging wrappers (virtual-rank reordering on the root,
//! one shared staging board) and go through the plan cache with keys that
//! carry a [`plan::counts_digest`] of the displacement table — `O(1)` key
//! size for `O(n)` irregularity.
//!
//! Count-vector *shape* mistakes (wrong length, root out of range) are
//! rejected up front with a structured [`VCountError`] by the `try_*`
//! entry points, before any allocation, barrier, or signal-slot activity
//! — the failure mode they replace was a much later slot-protocol panic
//! or deadlock once mismatched schedules disagreed across PEs.

use std::fmt;

use crate::collectives::plan::{self, PlanKey};
use crate::collectives::policy::{self, Algorithm, AlgorithmPolicy, SyncMode};
use crate::collectives::scatter::adjusted_displacements;
use crate::collectives::schedule::{
    gather_binomial, gather_linear_sched, scatter_binomial, scatter_linear_sched, CommSchedule,
    OpKind, Stage, TransferOp,
};
use crate::collectives::vrank::{logical_rank, virtual_rank};
use crate::fabric::{CollectiveKind, CollectiveSample, Pe};
use crate::types::XbrType;

// ---------------------------------------------------------------------------
// Structured count-vector validation
// ---------------------------------------------------------------------------

/// A v-collective's count/displacement vectors don't fit the team it was
/// called on. Returned by the `try_*` entry points *before* any
/// collective activity, so a caller can reject a malformed request
/// without wedging the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VCountError {
    /// The counts vector must have exactly one entry per team member.
    CountsLen {
        /// Team size the vector must match.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The displacement vector must have exactly one entry per team
    /// member.
    DisplsLen {
        /// Team size the vector must match.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The root rank is not a member of the team.
    RootOutOfRange {
        /// Requested root.
        root: usize,
        /// Team size it must be below.
        n_pes: usize,
    },
}

impl fmt::Display for VCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VCountError::CountsLen { expected, got } => {
                write!(
                    f,
                    "counts has {got} entries but the team has {expected} PEs"
                )
            }
            VCountError::DisplsLen { expected, got } => {
                write!(
                    f,
                    "displs has {got} entries but the team has {expected} PEs"
                )
            }
            VCountError::RootOutOfRange { root, n_pes } => {
                write!(f, "root {root} out of range for a {n_pes}-PE team")
            }
        }
    }
}

impl std::error::Error for VCountError {}

/// Check a v-collective's count/displacement shape against a team size.
/// Pure in its arguments, so every PE of a collective that passes the
/// same vectors reaches the same verdict before any of them has touched
/// the heap, a barrier, or a signal slot.
pub fn validate_v_shape(
    n_pes: usize,
    root: usize,
    counts: &[usize],
    displs: Option<&[usize]>,
) -> Result<(), VCountError> {
    if root >= n_pes {
        return Err(VCountError::RootOutOfRange { root, n_pes });
    }
    if counts.len() != n_pes {
        return Err(VCountError::CountsLen {
            expected: n_pes,
            got: counts.len(),
        });
    }
    if let Some(d) = displs {
        if d.len() != n_pes {
            return Err(VCountError::DisplsLen {
                expected: n_pes,
                got: d.len(),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Count-table geometry
// ---------------------------------------------------------------------------

/// Prefix displacements in *logical-rank* order: `disp[r]` is where PE
/// `r`'s block begins in the concatenated result and `disp[n]` is the
/// total element count. The rootless analogue of
/// [`adjusted_displacements`], which orders by virtual rank.
pub fn prefix_displacements(counts: &[usize]) -> Vec<usize> {
    let mut disp = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    for &c in counts {
        disp.push(acc);
        acc += c;
    }
    disp.push(acc);
    disp
}

/// Count skew in permille: `max(counts) · n · 1000 / total`. A uniform
/// table scores exactly 1000; 2000 means the largest block is twice its
/// fair share; `n · 1000` means one PE holds everything. Empty or
/// all-zero tables score 1000 (no skew to speak of). This is the
/// irregularity measure the `Auto` crossovers key on alongside total
/// bytes.
pub fn skew_permille(counts: &[usize]) -> u64 {
    let total: usize = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return 1000;
    }
    let max = *counts.iter().max().expect("non-empty");
    (max as u64) * (counts.len() as u64) * 1000 / (total as u64)
}

// ---------------------------------------------------------------------------
// Schedule generators
// ---------------------------------------------------------------------------

/// Chain-shaped scatterv: stage `v` forwards the still-undelivered
/// suffix `[adj_disp[v+1], adj_disp[n])` from virtual rank `v` to
/// `v + 1`, one hop per stage. The root injects the payload exactly once
/// (minus its own segment), which is what lets the pipelined executor
/// overlap hops — the same trade as the broadcast chain, made per-suffix
/// so each hop shrinks by the segments already delivered. Zero-length
/// suffixes end the chain early (`adj_disp` is monotone, so every later
/// suffix is empty too).
pub fn scatterv_ring_sched(n_pes: usize, root: usize, adj_disp: &[usize]) -> CommSchedule {
    debug_assert_eq!(adj_disp.len(), n_pes + 1);
    let mut stages = Vec::new();
    for v in 0..n_pes.saturating_sub(1) {
        let nelems = adj_disp[n_pes] - adj_disp[v + 1];
        if nelems == 0 {
            break;
        }
        stages.push(Stage::new(vec![TransferOp {
            src_pe: logical_rank(v, root, n_pes),
            dst_pe: logical_rank(v + 1, root, n_pes),
            src_at: adj_disp[v + 1],
            dst_at: adj_disp[v + 1],
            nelems,
            stride: 1,
            kind: OpKind::Put,
        }]));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::Scatter,
        stages,
    }
}

/// Chain-shaped gatherv, the reverse of [`scatterv_ring_sched`]: stage
/// `t` forwards the accumulated suffix `[adj_disp[v], adj_disp[n])` from
/// virtual rank `v = n − 1 − t` down to `v − 1`, so contributions roll
/// toward the root gathering mass as they go. Empty suffixes at the far
/// end of the chain are skipped.
pub fn gatherv_ring_sched(n_pes: usize, root: usize, adj_disp: &[usize]) -> CommSchedule {
    debug_assert_eq!(adj_disp.len(), n_pes + 1);
    let mut stages = Vec::new();
    for t in 0..n_pes.saturating_sub(1) {
        let v = n_pes - 1 - t;
        let nelems = adj_disp[n_pes] - adj_disp[v];
        if nelems == 0 {
            continue;
        }
        stages.push(Stage::new(vec![TransferOp {
            src_pe: logical_rank(v, root, n_pes),
            dst_pe: logical_rank(v - 1, root, n_pes),
            src_at: adj_disp[v],
            dst_at: adj_disp[v],
            nelems,
            stride: 1,
            kind: OpKind::Put,
        }]));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::Gather,
        stages,
    }
}

/// Single-stage allgatherv fan: every PE with a non-empty block puts it
/// at its prefix displacement on every PE (its own included) — the
/// irregular analogue of `all_gather_sched`, `O(n²)` ops in one stage.
/// `disp` is the `n + 1`-entry table from [`prefix_displacements`].
pub fn allgatherv_fan_sched(n_pes: usize, disp: &[usize]) -> CommSchedule {
    debug_assert_eq!(disp.len(), n_pes + 1);
    let mut ops = Vec::new();
    for me in 0..n_pes {
        let nelems = disp[me + 1] - disp[me];
        if nelems == 0 {
            continue;
        }
        for peer in 0..n_pes {
            ops.push(TransferOp {
                src_pe: me,
                dst_pe: peer,
                src_at: 0,
                dst_at: disp[me],
                nelems,
                stride: 1,
                kind: OpKind::PutFrom,
            });
        }
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllGather,
        stages: vec![Stage::new(ops)],
    }
}

/// Ring allgatherv: stage 0 publishes each PE's own block into its board
/// slot; stage `s ≥ 1` has every PE forward the block it received in the
/// previous stage — block `(me − s + 1) mod n` — to its successor. After
/// `n − 1` forwarding stages every board holds every block. Each PE
/// injects exactly one block per stage regardless of who originated it,
/// which makes the ring bandwidth-optimal for near-uniform tables; a
/// heavily skewed table retransmits the giant block on `n − 1`
/// consecutive critical-path hops, which is why the `Auto` crossover
/// abandons the ring at high skew. Zero-length blocks simply drop their
/// hop.
pub fn allgatherv_ring_sched(n_pes: usize, disp: &[usize]) -> CommSchedule {
    debug_assert_eq!(disp.len(), n_pes + 1);
    let total = disp[n_pes];
    let mut stages = Vec::new();
    if total > 0 {
        let mut publish = Vec::new();
        for me in 0..n_pes {
            let nelems = disp[me + 1] - disp[me];
            if nelems > 0 {
                publish.push(TransferOp {
                    src_pe: me,
                    dst_pe: me,
                    src_at: 0,
                    dst_at: disp[me],
                    nelems,
                    stride: 1,
                    kind: OpKind::PutFrom,
                });
            }
        }
        stages.push(Stage::new(publish));
        for s in 1..n_pes {
            let mut ops = Vec::new();
            for me in 0..n_pes {
                let b = (me + n_pes + 1 - s) % n_pes;
                let nelems = disp[b + 1] - disp[b];
                if nelems == 0 {
                    continue;
                }
                ops.push(TransferOp {
                    src_pe: me,
                    dst_pe: (me + 1) % n_pes,
                    src_at: disp[b],
                    dst_at: disp[b],
                    nelems,
                    stride: 1,
                    kind: OpKind::Put,
                });
            }
            if !ops.is_empty() {
                stages.push(Stage::new(ops));
            }
        }
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllGather,
        stages,
    }
}

/// Non-uniform dissemination allgatherv (Jocksch-style): the recursive
/// doubling of `all_gather_doubling_sched` generalised from `block ·
/// per_pe` offsets to arbitrary prefix displacements. Stage 0 publishes
/// each PE's block; then `⌈log2 n⌉` stages each pull the cyclic window
/// of `cnt` blocks ending at rank `me − have` from that PE, with the
/// window's element extent read off the `disp` table (a wrapped window
/// needs two contiguous gets). Zero-extent windows drop their get, and
/// fully empty stages are elided — a table where one PE holds everything
/// still completes in `O(log n)` stages with the giant block moved only
/// `⌈log2 n⌉` times, the property that makes this the high-skew `Auto`
/// choice.
pub fn allgatherv_dissemination_sched(n_pes: usize, disp: &[usize]) -> CommSchedule {
    debug_assert_eq!(disp.len(), n_pes + 1);
    let total = disp[n_pes];
    let mut stages = Vec::new();
    if total > 0 && n_pes > 1 {
        let mut publish = Vec::new();
        for me in 0..n_pes {
            let nelems = disp[me + 1] - disp[me];
            if nelems > 0 {
                publish.push(TransferOp {
                    src_pe: me,
                    dst_pe: me,
                    src_at: 0,
                    dst_at: disp[me],
                    nelems,
                    stride: 1,
                    kind: OpKind::PutFrom,
                });
            }
        }
        stages.push(Stage::new(publish));
        // After k stages each PE holds the cyclic window of `have`
        // blocks ending at its own rank, exactly as in the uniform
        // schedule — only the element extents differ per window.
        let mut have = 1usize;
        while have < n_pes {
            let cnt = have.min(n_pes - have);
            let mut ops = Vec::new();
            for me in 0..n_pes {
                let src = (me + n_pes - have) % n_pes;
                let first = (src + 1 + n_pes - cnt) % n_pes;
                let mut pull = |b0: usize, nb: usize| {
                    let nelems = disp[b0 + nb] - disp[b0];
                    if nelems > 0 {
                        ops.push(TransferOp {
                            src_pe: src,
                            dst_pe: me,
                            src_at: disp[b0],
                            dst_at: disp[b0],
                            nelems,
                            stride: 1,
                            kind: OpKind::Get,
                        });
                    }
                };
                if first <= src {
                    pull(first, cnt);
                } else {
                    // Window wraps rank 0: two contiguous gets.
                    pull(first, n_pes - first);
                    pull(0, src + 1);
                }
            }
            if !ops.is_empty() {
                stages.push(Stage::new(ops));
            }
            have += cnt;
        }
    } else if total > 0 {
        stages.push(Stage::new(vec![TransferOp {
            src_pe: 0,
            dst_pe: 0,
            src_at: 0,
            dst_at: 0,
            nelems: total,
            stride: 1,
            kind: OpKind::PutFrom,
        }]));
    }
    CommSchedule {
        n_pes,
        kind: CollectiveKind::AllGather,
        stages,
    }
}

// ---------------------------------------------------------------------------
// Allgatherv strategy selection
// ---------------------------------------------------------------------------

/// Strategy selector for [`allgatherv`]: single-stage fan, `n − 1`-stage
/// bandwidth-optimal ring, or log-stage non-uniform dissemination.
/// `Auto` resolves from world size, total bytes, and count skew
/// ([`policy::auto_select_allgatherv`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllGatherVAlgo {
    /// One stage of `n²` puts ([`allgatherv_fan_sched`]).
    Fan,
    /// `n − 1` forwarding stages, one block injected per PE per stage
    /// ([`allgatherv_ring_sched`]).
    Ring,
    /// `⌈log2 n⌉` doubling-window stages
    /// ([`allgatherv_dissemination_sched`]).
    Dissemination,
    /// Resolve from `(n_pes, total bytes, skew)` at the call site.
    #[default]
    Auto,
}

impl AllGatherVAlgo {
    /// The three concrete strategies, for exhaustive sweeps.
    pub const CONCRETE: [AllGatherVAlgo; 3] = [
        AllGatherVAlgo::Fan,
        AllGatherVAlgo::Ring,
        AllGatherVAlgo::Dissemination,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AllGatherVAlgo::Fan => "fan",
            AllGatherVAlgo::Ring => "ring",
            AllGatherVAlgo::Dissemination => "dissemination",
            AllGatherVAlgo::Auto => "auto",
        }
    }

    /// Resolve `Auto` against the calibrated crossovers; concrete
    /// strategies pass through.
    pub fn resolve(self, n_pes: usize, total_bytes: usize, skew_permille: u64) -> AllGatherVAlgo {
        match self {
            AllGatherVAlgo::Auto => {
                policy::auto_select_allgatherv(n_pes, total_bytes, skew_permille)
            }
            concrete => concrete,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Scatter `counts[r]` elements to each PE `r` from the root's `src`,
/// where PE `r`'s segment starts at `src[displs[r]]`. Auto algorithm and
/// sync selection; a malformed count vector panics — use
/// [`try_scatterv_policy_sync`] for the structured error.
///
/// ```
/// use xbrtime::{collectives, Fabric, FabricConfig};
/// let report = Fabric::run(FabricConfig::new(3), |pe| {
///     let src = if pe.rank() == 0 { (0..6u64).collect() } else { vec![] };
///     let mut mine = vec![0u64; 3];
///     collectives::vcoll::scatterv(pe, &mut mine, &src, &[1, 2, 3], &[0, 1, 3], 0);
///     pe.barrier();
///     mine
/// });
/// assert_eq!(report.results[2], vec![3, 4, 5]);
/// ```
pub fn scatterv<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    counts: &[usize],
    displs: &[usize],
    root: usize,
) {
    try_scatterv_policy_sync(
        pe,
        dest,
        src,
        counts,
        displs,
        root,
        AlgorithmPolicy::Auto,
        SyncMode::Auto,
    )
    .expect("scatterv: malformed count vector");
}

/// [`scatterv`] with explicit algorithm policy and sync mode, returning
/// a structured [`VCountError`] for malformed count vectors *before* any
/// allocation, barrier, or signal-slot activity. Zero-total scatters are
/// fully inert (telemetry only). Undersized `dest`/`src` buffers still
/// panic: those are local programming errors, not collective-shape
/// disagreements.
#[allow(clippy::too_many_arguments)]
pub fn try_scatterv_policy_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    counts: &[usize],
    displs: &[usize],
    root: usize,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) -> Result<(), VCountError> {
    let n_pes = pe.n_pes();
    let log_rank = pe.rank();
    validate_v_shape(n_pes, root, counts, Some(displs))?;
    let total: usize = counts.iter().sum();
    let my_count = counts[log_rank];
    assert!(
        dest.len() >= my_count,
        "dest holds {} elements but this PE receives {my_count}",
        dest.len()
    );
    if total == 0 {
        pe.note_collective(
            CollectiveKind::Scatter,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return Ok(());
    }
    let es = std::mem::size_of::<T>();
    let total_bytes = total * es;
    let skew = skew_permille(counts);
    let algo = match policy {
        AlgorithmPolicy::Binomial => Algorithm::Binomial,
        AlgorithmPolicy::Linear => Algorithm::Linear,
        AlgorithmPolicy::Ring => Algorithm::Ring,
        AlgorithmPolicy::Auto => policy::auto_select_vrooted(
            CollectiveKind::Scatter,
            n_pes,
            total_bytes,
            skew,
            sync.resolve(n_pes, total_bytes),
        ),
    };

    let vir_rank = virtual_rank(log_rank, root, n_pes);
    let adj_disp = adjusted_displacements(counts, root, n_pes);
    let s_buff = pe.shared_malloc::<T>(total);
    // Root: reorder src by virtual rank into the staging buffer, exactly
    // as the uniform scatter does (paper §4.5).
    if log_rank == root {
        for (v, &disp) in adj_disp.iter().take(n_pes).enumerate() {
            let l = logical_rank(v, root, n_pes);
            let c = counts[l];
            if c > 0 {
                assert!(
                    src.len() >= displs[l] + c,
                    "src holds {} elements but PE {l}'s segment ends at {}",
                    src.len(),
                    displs[l] + c
                );
                pe.heap_write(s_buff.at(disp), &src[displs[l]..displs[l] + c]);
            }
        }
    }
    pe.barrier();

    let (tag, key_algo) = match algo {
        Algorithm::Binomial => (plan::tag::SCATTER_BINOMIAL, Algorithm::Binomial),
        Algorithm::Linear => (plan::tag::SCATTER_LINEAR, Algorithm::Linear),
        Algorithm::Ring => (plan::tag::SCATTERV_RING, Algorithm::Ring),
    };
    let mut key = PlanKey::rooted(
        CollectiveKind::Scatter,
        key_algo,
        sync,
        n_pes,
        root,
        total,
        1,
        es,
        tag,
    );
    key.shape.push(plan::counts_digest(&adj_disp));
    plan::run_schedule(
        pe,
        key,
        || match algo {
            Algorithm::Binomial => scatter_binomial(n_pes, root, &adj_disp),
            Algorithm::Linear => scatter_linear_sched(n_pes, root, &adj_disp),
            Algorithm::Ring => scatterv_ring_sched(n_pes, root, &adj_disp),
        },
        s_buff.whole(),
        &[],
        &mut [],
        None,
        sync,
    );

    if my_count > 0 {
        pe.heap_read_strided(
            s_buff.at(adj_disp[vir_rank]),
            &mut dest[..my_count],
            my_count,
            1,
        );
    }
    pe.barrier();
    pe.shared_free(s_buff);
    Ok(())
}

/// Gather `counts[r]` elements from every PE `r`'s `src` to the root,
/// landing at `dest[displs[r]]` there. Auto algorithm and sync; a
/// malformed count vector panics — use [`try_gatherv_policy_sync`] for
/// the structured error.
///
/// ```
/// use xbrtime::{collectives, Fabric, FabricConfig};
/// let report = Fabric::run(FabricConfig::new(3), |pe| {
///     let mine = vec![pe.rank() as u64 + 10; pe.rank() + 1];
///     let mut all = vec![0u64; 6];
///     collectives::vcoll::gatherv(pe, &mut all, &mine, &[1, 2, 3], &[0, 1, 3], 1);
///     pe.barrier();
///     all
/// });
/// assert_eq!(report.results[1], vec![10, 11, 11, 12, 12, 12]);
/// ```
pub fn gatherv<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    counts: &[usize],
    displs: &[usize],
    root: usize,
) {
    try_gatherv_policy_sync(
        pe,
        dest,
        src,
        counts,
        displs,
        root,
        AlgorithmPolicy::Auto,
        SyncMode::Auto,
    )
    .expect("gatherv: malformed count vector");
}

/// [`gatherv`] with explicit algorithm policy and sync mode; structured
/// [`VCountError`] for malformed count vectors before any collective
/// activity, fully inert at zero total length.
#[allow(clippy::too_many_arguments)]
pub fn try_gatherv_policy_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    counts: &[usize],
    displs: &[usize],
    root: usize,
    policy: AlgorithmPolicy,
    sync: SyncMode,
) -> Result<(), VCountError> {
    let n_pes = pe.n_pes();
    let log_rank = pe.rank();
    validate_v_shape(n_pes, root, counts, Some(displs))?;
    let total: usize = counts.iter().sum();
    let my_count = counts[log_rank];
    assert!(
        src.len() >= my_count,
        "src holds {} elements but this PE contributes {my_count}",
        src.len()
    );
    if total == 0 {
        pe.note_collective(
            CollectiveKind::Gather,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return Ok(());
    }
    let es = std::mem::size_of::<T>();
    let total_bytes = total * es;
    let skew = skew_permille(counts);
    let algo = match policy {
        AlgorithmPolicy::Binomial => Algorithm::Binomial,
        AlgorithmPolicy::Linear => Algorithm::Linear,
        AlgorithmPolicy::Ring => Algorithm::Ring,
        AlgorithmPolicy::Auto => policy::auto_select_vrooted(
            CollectiveKind::Gather,
            n_pes,
            total_bytes,
            skew,
            sync.resolve(n_pes, total_bytes),
        ),
    };

    let vir_rank = virtual_rank(log_rank, root, n_pes);
    let adj_disp = adjusted_displacements(counts, root, n_pes);
    let s_buff = pe.shared_malloc::<T>(total);
    if my_count > 0 {
        pe.heap_write(s_buff.at(adj_disp[vir_rank]), &src[..my_count]);
    }
    pe.barrier();

    let (tag, key_algo) = match algo {
        Algorithm::Binomial => (plan::tag::GATHER_BINOMIAL, Algorithm::Binomial),
        Algorithm::Linear => (plan::tag::GATHER_LINEAR, Algorithm::Linear),
        Algorithm::Ring => (plan::tag::GATHERV_RING, Algorithm::Ring),
    };
    let mut key = PlanKey::rooted(
        CollectiveKind::Gather,
        key_algo,
        sync,
        n_pes,
        root,
        total,
        1,
        es,
        tag,
    );
    key.shape.push(plan::counts_digest(&adj_disp));
    plan::run_schedule(
        pe,
        key,
        || match algo {
            Algorithm::Binomial => gather_binomial(n_pes, root, &adj_disp),
            Algorithm::Linear => gather_linear_sched(n_pes, root, &adj_disp),
            Algorithm::Ring => gatherv_ring_sched(n_pes, root, &adj_disp),
        },
        s_buff.whole(),
        &[],
        &mut [],
        None,
        sync,
    );

    // Root: relocate each PE's segment from its virtual-rank staging slot
    // back to the caller's logical-order displacements.
    if log_rank == root {
        for (v, &at) in adj_disp.iter().take(n_pes).enumerate() {
            let l = logical_rank(v, root, n_pes);
            let c = counts[l];
            if c > 0 {
                assert!(
                    dest.len() >= displs[l] + c,
                    "dest holds {} elements but PE {l}'s segment ends at {}",
                    dest.len(),
                    displs[l] + c
                );
                pe.heap_read_strided(s_buff.at(at), &mut dest[displs[l]..displs[l] + c], c, 1);
            }
        }
    }
    pe.barrier();
    pe.shared_free(s_buff);
    Ok(())
}

/// All-gather with per-PE counts (OpenSHMEM `collect` with explicit
/// counts): every PE contributes `counts[rank]` elements from `src`, and
/// every PE's `dest` receives the rank-ordered concatenation (`Σ counts`
/// elements). Auto strategy and sync; a malformed count vector panics —
/// use [`try_allgatherv_algo_sync`] for the structured error.
///
/// ```
/// use xbrtime::{collectives, Fabric, FabricConfig};
/// let report = Fabric::run(FabricConfig::new(3), |pe| {
///     let mine = vec![pe.rank() as u64; pe.rank()]; // PE 0 contributes nothing
///     let mut all = vec![9u64; 3];
///     collectives::vcoll::allgatherv(pe, &mut all, &mine, &[0, 1, 2]);
///     pe.barrier();
///     all
/// });
/// assert_eq!(report.results[0], vec![1, 2, 2]);
/// ```
pub fn allgatherv<T: XbrType>(pe: &Pe, dest: &mut [T], src: &[T], counts: &[usize]) {
    try_allgatherv_algo_sync(pe, dest, src, counts, AllGatherVAlgo::Auto, SyncMode::Auto)
        .expect("allgatherv: malformed count vector");
}

/// [`allgatherv`] with explicit strategy and sync mode; structured
/// [`VCountError`] for malformed count vectors before any collective
/// activity. Zero-total exchanges are fully inert — telemetry only, no
/// staging board, no barriers.
pub fn try_allgatherv_algo_sync<T: XbrType>(
    pe: &Pe,
    dest: &mut [T],
    src: &[T],
    counts: &[usize],
    algo: AllGatherVAlgo,
    sync: SyncMode,
) -> Result<(), VCountError> {
    let n_pes = pe.n_pes();
    validate_v_shape(n_pes, 0, counts, None)?;
    let total: usize = counts.iter().sum();
    let my_count = counts[pe.rank()];
    assert!(
        src.len() >= my_count,
        "src holds {} elements but this PE contributes {my_count}",
        src.len()
    );
    assert!(
        dest.len() >= total,
        "dest holds {} elements but the concatenation has {total}",
        dest.len()
    );
    if total == 0 {
        pe.note_collective(
            CollectiveKind::AllGather,
            CollectiveSample {
                stages: 1,
                ..Default::default()
            },
        );
        return Ok(());
    }
    let es = std::mem::size_of::<T>();
    let algo = algo.resolve(n_pes, total * es, skew_permille(counts));
    let disp = prefix_displacements(counts);
    let (tag, key_algo) = match algo {
        AllGatherVAlgo::Fan => (plan::tag::ALLGATHERV_FAN, Algorithm::Linear),
        AllGatherVAlgo::Ring => (plan::tag::ALLGATHERV_RING, Algorithm::Ring),
        AllGatherVAlgo::Dissemination => (plan::tag::ALLGATHERV_DISS, Algorithm::Binomial),
        AllGatherVAlgo::Auto => unreachable!("resolved above"),
    };
    let board = pe.shared_malloc::<T>(total);
    let mut key = PlanKey::rooted(
        CollectiveKind::AllGather,
        key_algo,
        sync,
        n_pes,
        0,
        total,
        1,
        es,
        tag,
    );
    key.shape.push(plan::counts_digest(counts));
    plan::run_schedule(
        pe,
        key,
        || match algo {
            AllGatherVAlgo::Fan => allgatherv_fan_sched(n_pes, &disp),
            AllGatherVAlgo::Ring => allgatherv_ring_sched(n_pes, &disp),
            AllGatherVAlgo::Dissemination => allgatherv_dissemination_sched(n_pes, &disp),
            AllGatherVAlgo::Auto => unreachable!("resolved above"),
        },
        board.whole(),
        src,
        &mut [],
        None,
        sync,
    );
    pe.heap_read_strided(board.whole(), &mut dest[..total], total, 1);
    pe.barrier();
    pe.shared_free(board);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};

    /// Abstract replay of an allgatherv schedule: walk the stages over a
    /// model board per PE, applying puts/gets in stage order, and check
    /// every PE ends with every block at its prefix offset.
    fn replay_allgatherv(sched: &CommSchedule, counts: &[usize]) {
        let n = sched.n_pes;
        let disp = prefix_displacements(counts);
        let total = disp[n];
        // boards[p][i] = Some(origin value) once written.
        let mut boards = vec![vec![None; total]; n];
        let locals: Vec<Vec<u32>> = (0..n)
            .map(|p| (0..counts[p]).map(|k| (p * 1000 + k) as u32).collect())
            .collect();
        for stage in &sched.stages {
            let snapshot = boards.clone();
            for op in &stage.ops {
                for i in 0..op.nelems {
                    let v = match op.kind {
                        OpKind::PutFrom => Some(locals[op.src_pe][op.src_at + i]),
                        OpKind::Put | OpKind::Get => {
                            let v = snapshot[op.src_pe][op.src_at + i];
                            assert!(v.is_some(), "op reads an unwritten board cell");
                            v
                        }
                        other => panic!("unexpected op kind {other:?} in allgatherv"),
                    };
                    boards[op.dst_pe][op.dst_at + i] = v;
                }
            }
        }
        for (p, board) in boards.iter().enumerate() {
            for s in 0..n {
                for k in 0..counts[s] {
                    assert_eq!(
                        board[disp[s] + k],
                        Some((s * 1000 + k) as u32),
                        "PE {p} missing element {k} of block {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn allgatherv_schedules_cover_all_blocks() {
        let tables: &[&[usize]] = &[
            &[1, 2, 3],
            &[0, 4, 0, 1],
            &[7, 0, 0, 0, 0],
            &[1, 1, 1, 1, 1, 1, 1],
            &[3, 1, 4, 1, 5, 9, 2, 6],
        ];
        for counts in tables {
            let n = counts.len();
            let disp = prefix_displacements(counts);
            replay_allgatherv(&allgatherv_fan_sched(n, &disp), counts);
            replay_allgatherv(&allgatherv_ring_sched(n, &disp), counts);
            replay_allgatherv(&allgatherv_dissemination_sched(n, &disp), counts);
        }
    }

    #[test]
    fn dissemination_stage_count_is_logarithmic() {
        for n in 2..=16 {
            let counts = vec![2usize; n];
            let disp = prefix_displacements(&counts);
            let sched = allgatherv_dissemination_sched(n, &disp);
            let log = usize::BITS as usize - (n - 1).leading_zeros() as usize;
            assert_eq!(sched.stages.len(), 1 + log, "n = {n}");
        }
    }

    #[test]
    fn ring_chain_is_one_op_per_stage() {
        let adj = adjusted_displacements(&[2, 1, 3, 2], 1, 4);
        let sched = scatterv_ring_sched(4, 1, &adj);
        assert_eq!(sched.stages.len(), 3);
        assert!(sched.stages.iter().all(|s| s.ops.len() == 1));
        let back = gatherv_ring_sched(4, 1, &adj);
        assert_eq!(back.stages.len(), 3);
    }

    #[test]
    fn skew_measure_anchors() {
        assert_eq!(skew_permille(&[2, 2, 2, 2]), 1000);
        assert_eq!(skew_permille(&[4, 0, 0, 0]), 4000);
        assert_eq!(skew_permille(&[0, 0]), 1000);
    }

    #[test]
    fn scatterv_roundtrip_all_algos() {
        for policy in [
            AlgorithmPolicy::Binomial,
            AlgorithmPolicy::Linear,
            AlgorithmPolicy::Ring,
            AlgorithmPolicy::Auto,
        ] {
            let report = Fabric::run(FabricConfig::new(4), move |pe| {
                let counts = [2usize, 0, 3, 1];
                let displs = [0usize, 2, 2, 5];
                let src: Vec<u64> = if pe.rank() == 2 {
                    (0..6).collect()
                } else {
                    vec![]
                };
                let mut mine = vec![0u64; counts[pe.rank()]];
                try_scatterv_policy_sync(
                    pe,
                    &mut mine,
                    &src,
                    &counts,
                    &displs,
                    2,
                    policy,
                    SyncMode::Auto,
                )
                .unwrap();
                pe.barrier();
                mine
            });
            assert_eq!(report.results[0], vec![0, 1], "{policy:?}");
            assert_eq!(report.results[1], Vec::<u64>::new());
            assert_eq!(report.results[2], vec![2, 3, 4]);
            assert_eq!(report.results[3], vec![5]);
        }
    }

    #[test]
    fn gatherv_roundtrip_all_algos() {
        for policy in [
            AlgorithmPolicy::Binomial,
            AlgorithmPolicy::Linear,
            AlgorithmPolicy::Ring,
            AlgorithmPolicy::Auto,
        ] {
            let report = Fabric::run(FabricConfig::new(4), move |pe| {
                let counts = [1usize, 3, 0, 2];
                let displs = [5usize, 0, 3, 3];
                let mine: Vec<u64> = (0..counts[pe.rank()] as u64)
                    .map(|k| pe.rank() as u64 * 10 + k)
                    .collect();
                let mut all = vec![99u64; 6];
                try_gatherv_policy_sync(
                    pe,
                    &mut all,
                    &mine,
                    &counts,
                    &displs,
                    3,
                    policy,
                    SyncMode::Auto,
                )
                .unwrap();
                pe.barrier();
                all
            });
            // displs place PE1 at 0..3, PE3 at 3..5, PE0 at 5.
            assert_eq!(report.results[3], vec![10, 11, 12, 30, 31, 0], "{policy:?}");
        }
    }

    #[test]
    fn allgatherv_roundtrip_all_algos() {
        for algo in AllGatherVAlgo::CONCRETE {
            let report = Fabric::run(FabricConfig::new(5), move |pe| {
                let counts = [2usize, 0, 1, 4, 0];
                let mine: Vec<u64> = (0..counts[pe.rank()] as u64)
                    .map(|k| pe.rank() as u64 * 10 + k)
                    .collect();
                let mut all = vec![0u64; 7];
                try_allgatherv_algo_sync(pe, &mut all, &mine, &counts, algo, SyncMode::Auto)
                    .unwrap();
                pe.barrier();
                all
            });
            for r in 0..5 {
                assert_eq!(
                    report.results[r],
                    vec![0, 1, 20, 30, 31, 32, 33],
                    "{algo:?} PE {r}"
                );
            }
        }
    }

    #[test]
    fn malformed_counts_rejected_before_any_collective_activity() {
        let report = Fabric::run(FabricConfig::new(3), |pe| {
            let mut dest = vec![0u64; 4];
            // counts has 4 entries for a 3-PE world.
            let err = try_allgatherv_algo_sync(
                pe,
                &mut dest,
                &[1u64],
                &[1, 1, 1, 1],
                AllGatherVAlgo::Auto,
                SyncMode::Auto,
            )
            .unwrap_err();
            assert_eq!(
                err,
                VCountError::CountsLen {
                    expected: 3,
                    got: 4
                }
            );
            // The fabric is still healthy: a follow-up collective works.
            let mut ok = vec![0u64; 3];
            allgatherv(pe, &mut ok, &[pe.rank() as u64], &[1, 1, 1]);
            pe.barrier();
            ok
        });
        assert_eq!(report.results[1], vec![0, 1, 2]);
    }
}
