//! Compiled schedule plans and the plan cache (ROADMAP item 3).
//!
//! [`schedule::execute_sync`] walks a [`CommSchedule`]'s nested
//! stage/op structure interpretively on every call: it re-resolves
//! `SyncMode::Auto`, recomputes signal-slot indices and pipeline chunk
//! ranges, and re-runs the pending-signal bookkeeping — pure per-issue
//! overhead that dominates at small payloads. This module lowers a
//! `(CommSchedule, SyncMode, elem_bytes)` triple **once** into a
//! [`Plan`]: a flat, branch-free per-PE array of [`PlanStep`]s with every
//! slot index, chunk window and fold span pre-resolved, in the spirit of
//! `verify::compile`'s abstract programs — except that this lowering
//! preserves the executor's telemetry and trace behaviour call-for-call,
//! so a compiled plan is observationally identical to the interpretive
//! walk (the plan-equivalence suite pins this down).
//!
//! Plans are memoized in a sharded [`PlanCache`] keyed by the full
//! collective shape ([`PlanKey`]); repeat issues of the same collective
//! skip schedule generation, validation, Auto resolution and lowering
//! entirely. On top of cached plans sit the nonblocking collectives
//! ([`ixbroadcast`]/[`ixreduce`]/[`ixallreduce`] returning a
//! [`CollHandle`]) and their persistent `plan_create`/`plan_start`
//! variants.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::collectives::policy::{
    pipeline_chunks, Algorithm, SyncMode, ACK_SLOT, READY_SLOT, SLOTS_PER_OP,
};
use crate::collectives::schedule::{
    self, broadcast_binomial, is_put_kind, reduce_binomial, CommSchedule, OpKind, TransferOp,
};
use crate::fabric::{CollectiveKind, CollectiveSample, Pe, SymmAlloc, SymmRef};
use crate::trace::TraceKind;
use crate::types::XbrType;

// ---------------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------------

/// Signal-table slots reserved on the *first* nonblocking issue, in
/// units of that plan's slot window: room for this many same-shaped
/// episodes in flight before a later issue would need to grow the table
/// mid-overlap (which `issue_plan` refuses — growth frees the live
/// table). Deeper windows are possible by pre-sizing with
/// [`Pe::signal_table`](crate::fabric::Pe::signal_table).
const OVERLAP_HEADROOM: usize = 16;

/// One pre-lowered executor action. Offsets are element offsets into the
/// schedule's symmetric working buffer (`*_at`) or the issuer's private
/// `local_src`/`local_dst` slices (`lo..hi` ranges); signal slots are
/// *plan-relative* indices into the fabric's symmetric signal table,
/// rebased at issue time so overlapping nonblocking episodes never
/// collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// Publish stage `si` to the progress plane and open its trace span.
    /// `si == n_stages` is the signaled drain.
    StageStart {
        /// Stage index.
        si: u32,
    },
    /// Close stage `si`'s trace span.
    StageEnd {
        /// Stage index.
        si: u32,
    },
    /// Full fabric barrier.
    Barrier,
    /// Post signal slot `slot` to `dst_pe` (readiness announcements).
    Post {
        /// Plan-relative slot.
        slot: u32,
        /// Target PE.
        dst_pe: u32,
    },
    /// Consume signal slot `slot` on this PE, accumulating stall cycles.
    Wait {
        /// Plan-relative slot.
        slot: u32,
    },
    /// Heap-to-heap put (one chunk of an `OpKind::Put`).
    PutSymm {
        /// Destination element offset in the symmetric buffer.
        dst_at: u32,
        /// Source element offset in the symmetric buffer.
        src_at: u32,
        /// Elements in this chunk.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Target PE.
        dst_pe: u32,
        /// Completion signal slot (remote targets only).
        sig: Option<u32>,
        /// Chunk index when the op was pipelined into >1 chunks (drives
        /// the per-chunk trace event); `None` for unchunked transfers.
        chunk: Option<u32>,
    },
    /// Blocking put from `local_src[src_lo..src_hi]`.
    PutFrom {
        /// Destination element offset in the symmetric buffer.
        dst_at: u32,
        /// Start of the private source window.
        src_lo: u32,
        /// End of the private source window.
        src_hi: u32,
        /// Elements in this chunk.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Target PE.
        dst_pe: u32,
        /// Completion signal slot (remote targets only).
        sig: Option<u32>,
        /// Chunk index when pipelined (see [`PlanStep::PutSymm::chunk`]).
        chunk: Option<u32>,
    },
    /// Non-blocking put from `local_src[src_lo..src_hi]`; the signal (if
    /// any) is stamped with the transfer's completion time.
    PutNb {
        /// Destination element offset in the symmetric buffer.
        dst_at: u32,
        /// Start of the private source window.
        src_lo: u32,
        /// End of the private source window.
        src_hi: u32,
        /// Elements in this chunk.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Target PE.
        dst_pe: u32,
        /// Completion signal slot (remote targets only).
        sig: Option<u32>,
        /// Chunk index when pipelined.
        chunk: Option<u32>,
    },
    /// Heap-to-heap get.
    GetSymm {
        /// Destination element offset in the symmetric buffer.
        dst_at: u32,
        /// Source element offset in the symmetric buffer.
        src_at: u32,
        /// Elements.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Source PE.
        src_pe: u32,
    },
    /// Get into `local_dst[dst_lo..dst_hi]`.
    GetInto {
        /// Start of the private destination window.
        dst_lo: u32,
        /// End of the private destination window.
        dst_hi: u32,
        /// Source element offset in the symmetric buffer.
        src_at: u32,
        /// Elements.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Source PE.
        src_pe: u32,
    },
    /// Get into the reusable landing buffer, optionally acknowledging the
    /// read to the source PE (`get_signal`).
    GetLanding {
        /// Source element offset in the symmetric buffer.
        src_at: u32,
        /// Elements.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Source PE.
        src_pe: u32,
        /// Acknowledgement slot posted to `src_pe` after the read.
        ack: Option<u32>,
    },
    /// Fold the landing buffer into the symmetric buffer at `dst_at`
    /// (`OpKind::GetFold`), over `span` elements read-modify-written.
    FoldSymm {
        /// Destination element offset in the symmetric buffer.
        dst_at: u32,
        /// Elements folded.
        nelems: u32,
        /// Element stride.
        stride: u32,
        /// Contiguous span read back and rewritten (`op.span().max(1)`).
        span: u32,
    },
    /// Fold the landing buffer into `local_dst` at `dst_at`
    /// (`OpKind::GetFoldInto`).
    FoldInto {
        /// Destination element offset in `local_dst`.
        dst_at: u32,
        /// Elements folded.
        nelems: u32,
        /// Element stride.
        stride: u32,
    },
}

/// The static (shape-determined) part of a [`CollectiveSample`]: every
/// counter except the two that depend on runtime timing (`cycles`,
/// `wait_cycles`). Pre-computed at lowering time so the plan executor
/// does no per-op counter arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleTemplate {
    /// Puts this PE issues per episode.
    pub puts: u64,
    /// Gets this PE issues per episode.
    pub gets: u64,
    /// Bytes this PE pushes per episode.
    pub bytes_put: u64,
    /// Bytes this PE pulls per episode.
    pub bytes_get: u64,
    /// Stages in the schedule.
    pub stages: u64,
    /// Signals this PE posts per episode.
    pub signals: u64,
    /// Signal waits this PE performs per episode.
    pub waits: u64,
}

impl SampleTemplate {
    /// Materialise a [`CollectiveSample`] with the given dynamic counters.
    pub fn sample(&self, cycles: u64, wait_cycles: u64) -> CollectiveSample {
        CollectiveSample {
            puts: self.puts,
            gets: self.gets,
            bytes_put: self.bytes_put,
            bytes_get: self.bytes_get,
            stages: self.stages,
            cycles,
            signals: self.signals,
            waits: self.waits,
            wait_cycles,
        }
    }
}

/// One PE's compiled program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeProgram {
    /// Flat step array, stage structure already linearised.
    pub steps: Vec<PlanStep>,
    /// Index of the first *drain* step (signal waits + closing barrier).
    /// A nonblocking issue runs `steps[..drain_from]`; `wait` runs the
    /// rest. Barrier-discipline plans have `drain_from == steps.len()`
    /// (the whole episode completes at issue).
    pub drain_from: usize,
    /// Landing-buffer elements this PE's folds need.
    pub landing_len: usize,
    /// Static telemetry counters for one episode.
    pub sample: SampleTemplate,
}

/// A fully lowered collective: per-PE step arrays plus everything the
/// executor needs that the interpretive path recomputed per call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Telemetry kind episodes report under.
    pub kind: CollectiveKind,
    /// The **resolved** sync discipline (`Auto` decided at build time —
    /// never re-checked at issue).
    pub sync: SyncMode,
    /// Element size the plan was lowered for.
    pub elem_bytes: usize,
    /// World size.
    pub n_pes: usize,
    /// Stage count of the source schedule.
    pub n_stages: usize,
    /// `true` when no op moves data: the episode is only a telemetry
    /// note, with no barriers, transfers or progress traffic.
    pub empty: bool,
    /// Signal-table slots one episode occupies (0 under the barrier
    /// discipline).
    pub n_slots: usize,
    /// Per-PE programs, indexed by rank.
    pub per_pe: Vec<PeProgram>,
}

impl Plan {
    /// Rough heap footprint, for cache telemetry.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Plan>()
            + self
                .per_pe
                .iter()
                .map(|p| {
                    std::mem::size_of::<PeProgram>()
                        + p.steps.len() * std::mem::size_of::<PlanStep>()
                })
                .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Compile-time image of the executor's pending-put list. The lowering
/// replays the interpretive `consume_overlapping` scan — including its
/// `swap_remove` ordering — so the emitted `Wait` steps consume slots in
/// exactly the order the interpretive executor would.
struct PendingAt {
    slot: usize,
    start: usize,
    end: usize,
}

fn consume_overlapping(
    pending: &mut Vec<PendingAt>,
    steps: &mut Vec<PlanStep>,
    tmpl: &mut SampleTemplate,
    start: usize,
    end: usize,
) {
    let mut i = 0;
    while i < pending.len() {
        if pending[i].start < end && start < pending[i].end {
            let p = pending.swap_remove(i);
            steps.push(PlanStep::Wait {
                slot: p.slot as u32,
            });
            tmpl.waits += 1;
        } else {
            i += 1;
        }
    }
}

fn chunk_elems(op: &TransferOp, c: usize, n: usize) -> (usize, usize) {
    let per = op.nelems.div_ceil(n);
    ((c * per).min(op.nelems), ((c + 1) * per).min(op.nelems))
}

fn chunk_range(at: usize, stride: usize, c0: usize, c1: usize) -> (usize, usize) {
    if c1 <= c0 {
        return (at, at);
    }
    (at + c0 * stride, at + (c1 - 1) * stride + 1)
}

fn fold_step(op: &TransferOp) -> PlanStep {
    match op.kind {
        OpKind::GetFold => PlanStep::FoldSymm {
            dst_at: op.dst_at as u32,
            nelems: op.nelems as u32,
            stride: op.stride as u32,
            span: op.span().max(1) as u32,
        },
        OpKind::GetFoldInto => PlanStep::FoldInto {
            dst_at: op.dst_at as u32,
            nelems: op.nelems as u32,
            stride: op.stride as u32,
        },
        _ => unreachable!("fold_step on a non-fold op"),
    }
}

/// Lower `sched` under the requested `sync` into a [`Plan`].
///
/// `SyncMode::Auto` is resolved **here**, once, through the same
/// [`CommSchedule::resolve_sync`] the interpretive executor consults per
/// call; the resolved discipline is recorded in [`Plan::sync`]. The
/// per-PE step streams replay the interpretive control flow exactly —
/// same ops in the same order, same signal-slot indices, same pending
/// consumption order, same trace events — so plan execution is
/// observationally identical to `schedule::execute_sync`.
pub fn lower(sched: &CommSchedule, sync: SyncMode, elem_bytes: usize) -> Plan {
    sched.validate();
    let es = elem_bytes;
    let n_stages = sched.stages.len();
    let empty = !sched.ops().any(|op| op.nelems > 0);
    let resolved = sched.resolve_sync(sync, es);
    let n_slots = if empty || resolved == SyncMode::Barrier {
        0
    } else {
        sched.total_ops() * SLOTS_PER_OP
    };
    let op_base = sched.op_bases();

    let mut per_pe = Vec::with_capacity(sched.n_pes);
    for me in 0..sched.n_pes {
        let mut tmpl = SampleTemplate {
            stages: n_stages as u64,
            ..SampleTemplate::default()
        };
        let mut steps: Vec<PlanStep> = Vec::new();
        if empty {
            per_pe.push(PeProgram {
                steps,
                drain_from: 0,
                landing_len: 0,
                sample: tmpl,
            });
            continue;
        }
        let landing_len = sched
            .ops()
            .filter(|op| op.is_fold() && op.dst_pe == me)
            .map(|op| op.span().max(1))
            .max()
            .unwrap_or(0);

        let count_put = |tmpl: &mut SampleTemplate, nelems: usize| {
            tmpl.puts += 1;
            tmpl.bytes_put += (nelems * es) as u64;
        };
        let count_get = |tmpl: &mut SampleTemplate, nelems: usize| {
            tmpl.gets += 1;
            tmpl.bytes_get += (nelems * es) as u64;
        };

        let drain_from;
        if resolved == SyncMode::Barrier {
            for (si, stage) in sched.stages.iter().enumerate() {
                steps.push(PlanStep::StageStart { si: si as u32 });
                if stage.deferred_fold {
                    for op in &stage.ops {
                        if op.issuer() != me {
                            continue;
                        }
                        steps.push(PlanStep::GetLanding {
                            src_at: op.src_at as u32,
                            nelems: op.nelems as u32,
                            stride: op.stride as u32,
                            src_pe: op.src_pe as u32,
                            ack: None,
                        });
                        count_get(&mut tmpl, op.nelems);
                    }
                    steps.push(PlanStep::Barrier);
                    for op in &stage.ops {
                        if op.issuer() == me {
                            steps.push(fold_step(op));
                        }
                    }
                    steps.push(PlanStep::Barrier);
                    steps.push(PlanStep::StageEnd { si: si as u32 });
                    continue;
                }
                for op in &stage.ops {
                    if op.issuer() != me {
                        continue;
                    }
                    match op.kind {
                        OpKind::Put => {
                            steps.push(PlanStep::PutSymm {
                                dst_at: op.dst_at as u32,
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                dst_pe: op.dst_pe as u32,
                                sig: None,
                                chunk: None,
                            });
                            count_put(&mut tmpl, op.nelems);
                        }
                        OpKind::Get => {
                            steps.push(PlanStep::GetSymm {
                                dst_at: op.dst_at as u32,
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                            });
                            count_get(&mut tmpl, op.nelems);
                        }
                        OpKind::PutFrom => {
                            steps.push(PlanStep::PutFrom {
                                dst_at: op.dst_at as u32,
                                src_lo: op.src_at as u32,
                                src_hi: (op.src_at + op.span()) as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                dst_pe: op.dst_pe as u32,
                                sig: None,
                                chunk: None,
                            });
                            count_put(&mut tmpl, op.nelems);
                        }
                        OpKind::PutNb => {
                            steps.push(PlanStep::PutNb {
                                dst_at: op.dst_at as u32,
                                src_lo: op.src_at as u32,
                                src_hi: (op.src_at + op.span()) as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                dst_pe: op.dst_pe as u32,
                                sig: None,
                                chunk: None,
                            });
                            count_put(&mut tmpl, op.nelems);
                        }
                        OpKind::GetInto => {
                            steps.push(PlanStep::GetInto {
                                dst_lo: op.dst_at as u32,
                                dst_hi: (op.dst_at + op.span()) as u32,
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                            });
                            count_get(&mut tmpl, op.nelems);
                        }
                        OpKind::GetFold | OpKind::GetFoldInto => {
                            steps.push(PlanStep::GetLanding {
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                                ack: None,
                            });
                            count_get(&mut tmpl, op.nelems);
                            steps.push(fold_step(op));
                        }
                    }
                }
                steps.push(PlanStep::Barrier);
                steps.push(PlanStep::StageEnd { si: si as u32 });
            }
            drain_from = steps.len();
        } else {
            let pipelined = resolved == SyncMode::Pipelined;
            let chunks_of = |op: &TransferOp| -> usize {
                if pipelined && is_put_kind(op.kind) {
                    pipeline_chunks(op.nelems * es)
                } else {
                    1
                }
            };
            let mut pending: Vec<PendingAt> = Vec::new();
            for (si, stage) in sched.stages.iter().enumerate() {
                steps.push(PlanStep::StageStart { si: si as u32 });
                let base = op_base[si];
                if stage.deferred_fold {
                    for (oi, op) in stage.ops.iter().enumerate() {
                        if op.nelems > 0 && op.src_pe == me && op.issuer() != me {
                            consume_overlapping(
                                &mut pending,
                                &mut steps,
                                &mut tmpl,
                                op.src_at,
                                op.src_at + op.span(),
                            );
                            steps.push(PlanStep::Post {
                                slot: ((base + oi) * SLOTS_PER_OP + READY_SLOT) as u32,
                                dst_pe: op.dst_pe as u32,
                            });
                            tmpl.signals += 1;
                        }
                    }
                    for (oi, op) in stage.ops.iter().enumerate() {
                        if op.issuer() != me || op.nelems == 0 {
                            continue;
                        }
                        if op.src_pe != me {
                            steps.push(PlanStep::Wait {
                                slot: ((base + oi) * SLOTS_PER_OP + READY_SLOT) as u32,
                            });
                            tmpl.waits += 1;
                            steps.push(PlanStep::GetLanding {
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                                ack: Some(((base + oi) * SLOTS_PER_OP + ACK_SLOT) as u32),
                            });
                            tmpl.signals += 1;
                        } else {
                            steps.push(PlanStep::GetLanding {
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                                ack: None,
                            });
                        }
                        count_get(&mut tmpl, op.nelems);
                    }
                    for (oi, op) in stage.ops.iter().enumerate() {
                        if op.nelems > 0 && op.src_pe == me && op.issuer() != me {
                            steps.push(PlanStep::Wait {
                                slot: ((base + oi) * SLOTS_PER_OP + ACK_SLOT) as u32,
                            });
                            tmpl.waits += 1;
                        }
                    }
                    for op in &stage.ops {
                        if op.issuer() == me && op.nelems > 0 {
                            steps.push(fold_step(op));
                        }
                    }
                    steps.push(PlanStep::StageEnd { si: si as u32 });
                    continue;
                }

                for (oi, op) in stage.ops.iter().enumerate() {
                    if op.nelems > 0
                        && !is_put_kind(op.kind)
                        && op.src_pe == me
                        && op.issuer() != me
                    {
                        consume_overlapping(
                            &mut pending,
                            &mut steps,
                            &mut tmpl,
                            op.src_at,
                            op.src_at + op.span(),
                        );
                        steps.push(PlanStep::Post {
                            slot: ((base + oi) * SLOTS_PER_OP + READY_SLOT) as u32,
                            dst_pe: op.dst_pe as u32,
                        });
                        tmpl.signals += 1;
                    }
                }

                for (oi, op) in stage.ops.iter().enumerate() {
                    if op.issuer() != me || op.nelems == 0 {
                        continue;
                    }
                    let sig = (base + oi) * SLOTS_PER_OP;
                    match op.kind {
                        OpKind::Put | OpKind::PutFrom | OpKind::PutNb => {
                            let n = chunks_of(op);
                            for c in 0..n {
                                let (c0, c1) = chunk_elems(op, c, n);
                                if c0 >= c1 {
                                    continue;
                                }
                                let (s0, s1) = chunk_range(op.src_at, op.stride, c0, c1);
                                // PutFrom/PutNb read private memory, so the
                                // pending consume guards only Put's symmetric
                                // source window — matching the executor.
                                if op.kind == OpKind::Put {
                                    consume_overlapping(
                                        &mut pending,
                                        &mut steps,
                                        &mut tmpl,
                                        s0,
                                        s1,
                                    );
                                }
                                let remote = op.dst_pe != me;
                                let slot = remote.then_some((sig + c) as u32);
                                let chunk = (n > 1).then_some(c as u32);
                                let step = match op.kind {
                                    OpKind::Put => PlanStep::PutSymm {
                                        dst_at: (op.dst_at + c0 * op.stride) as u32,
                                        src_at: (op.src_at + c0 * op.stride) as u32,
                                        nelems: (c1 - c0) as u32,
                                        stride: op.stride as u32,
                                        dst_pe: op.dst_pe as u32,
                                        sig: slot,
                                        chunk,
                                    },
                                    OpKind::PutFrom => PlanStep::PutFrom {
                                        dst_at: (op.dst_at + c0 * op.stride) as u32,
                                        src_lo: s0 as u32,
                                        src_hi: s1 as u32,
                                        nelems: (c1 - c0) as u32,
                                        stride: op.stride as u32,
                                        dst_pe: op.dst_pe as u32,
                                        sig: slot,
                                        chunk,
                                    },
                                    OpKind::PutNb => PlanStep::PutNb {
                                        dst_at: (op.dst_at + c0 * op.stride) as u32,
                                        src_lo: s0 as u32,
                                        src_hi: s1 as u32,
                                        nelems: (c1 - c0) as u32,
                                        stride: op.stride as u32,
                                        dst_pe: op.dst_pe as u32,
                                        sig: slot,
                                        chunk,
                                    },
                                    _ => unreachable!(),
                                };
                                steps.push(step);
                                if remote {
                                    tmpl.signals += 1;
                                }
                                count_put(&mut tmpl, c1 - c0);
                            }
                        }
                        OpKind::Get => {
                            if op.src_pe != me {
                                steps.push(PlanStep::Wait {
                                    slot: (sig + READY_SLOT) as u32,
                                });
                                tmpl.waits += 1;
                            }
                            consume_overlapping(
                                &mut pending,
                                &mut steps,
                                &mut tmpl,
                                op.dst_at,
                                op.dst_at + op.span(),
                            );
                            steps.push(PlanStep::GetSymm {
                                dst_at: op.dst_at as u32,
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                            });
                            count_get(&mut tmpl, op.nelems);
                        }
                        OpKind::GetInto => {
                            if op.src_pe != me {
                                steps.push(PlanStep::Wait {
                                    slot: (sig + READY_SLOT) as u32,
                                });
                                tmpl.waits += 1;
                            } else {
                                consume_overlapping(
                                    &mut pending,
                                    &mut steps,
                                    &mut tmpl,
                                    op.src_at,
                                    op.src_at + op.span(),
                                );
                            }
                            steps.push(PlanStep::GetInto {
                                dst_lo: op.dst_at as u32,
                                dst_hi: (op.dst_at + op.span()) as u32,
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                            });
                            count_get(&mut tmpl, op.nelems);
                        }
                        OpKind::GetFold | OpKind::GetFoldInto => {
                            if op.src_pe != me {
                                steps.push(PlanStep::Wait {
                                    slot: (sig + READY_SLOT) as u32,
                                });
                                tmpl.waits += 1;
                            } else {
                                consume_overlapping(
                                    &mut pending,
                                    &mut steps,
                                    &mut tmpl,
                                    op.src_at,
                                    op.src_at + op.span(),
                                );
                            }
                            steps.push(PlanStep::GetLanding {
                                src_at: op.src_at as u32,
                                nelems: op.nelems as u32,
                                stride: op.stride as u32,
                                src_pe: op.src_pe as u32,
                                ack: None,
                            });
                            count_get(&mut tmpl, op.nelems);
                            if op.kind == OpKind::GetFold {
                                consume_overlapping(
                                    &mut pending,
                                    &mut steps,
                                    &mut tmpl,
                                    op.dst_at,
                                    op.dst_at + op.span(),
                                );
                            }
                            steps.push(fold_step(op));
                        }
                    }
                }

                for (oi, op) in stage.ops.iter().enumerate() {
                    if op.nelems == 0 || !is_put_kind(op.kind) || op.dst_pe != me || op.src_pe == me
                    {
                        continue;
                    }
                    let n = chunks_of(op);
                    for c in 0..n {
                        let (c0, c1) = chunk_elems(op, c, n);
                        if c0 >= c1 {
                            continue;
                        }
                        let (start, end) = chunk_range(op.dst_at, op.stride, c0, c1);
                        pending.push(PendingAt {
                            slot: (base + oi) * SLOTS_PER_OP + c,
                            start,
                            end,
                        });
                    }
                }
                steps.push(PlanStep::StageEnd { si: si as u32 });
            }

            drain_from = steps.len();
            steps.push(PlanStep::StageStart {
                si: n_stages as u32,
            });
            for p in pending.drain(..) {
                steps.push(PlanStep::Wait {
                    slot: p.slot as u32,
                });
                tmpl.waits += 1;
            }
            steps.push(PlanStep::Barrier);
            steps.push(PlanStep::StageEnd {
                si: n_stages as u32,
            });
        }

        per_pe.push(PeProgram {
            steps,
            drain_from,
            landing_len,
            sample: tmpl,
        });
    }

    Plan {
        kind: sched.kind,
        sync: resolved,
        elem_bytes: es,
        n_pes: sched.n_pes,
        n_stages,
        empty,
        n_slots,
        per_pe,
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// Run a step window. `base` rebases every plan-relative signal slot
/// (nonblocking overlap support); blocking execution passes the PE's
/// current slot floor. Returns accumulated signal-wait stall cycles.
#[allow(clippy::too_many_arguments)]
fn run_steps<T: XbrType>(
    pe: &Pe,
    steps: &[PlanStep],
    base: usize,
    table: Option<SymmRef<u64>>,
    buf: SymmRef<T>,
    local_src: &[T],
    local_dst: &mut [T],
    fold: Option<&dyn Fn(T, T) -> T>,
    landing: &mut [T],
) -> u64 {
    let es = std::mem::size_of::<T>();
    let slot_ref = |s: u32| {
        table
            .expect("plan has signal steps but no table")
            .offset(base + s as usize)
    };
    let mut wait_cycles = 0u64;
    let mut t_st: Option<u64> = None;
    for step in steps {
        match *step {
            PlanStep::StageStart { si } => {
                pe.progress_stage(si as usize);
                t_st = pe.trace_start();
            }
            PlanStep::StageEnd { si } => {
                pe.trace_emit(t_st, TraceKind::Stage, None, 0, si as u64);
            }
            PlanStep::Barrier => pe.barrier(),
            PlanStep::Post { slot, dst_pe } => {
                pe.signal_post(slot_ref(slot), dst_pe as usize);
            }
            PlanStep::Wait { slot } => {
                wait_cycles += pe.signal_wait(slot_ref(slot));
            }
            PlanStep::PutSymm {
                dst_at,
                src_at,
                nelems,
                stride,
                dst_pe,
                sig,
                chunk,
            } => {
                let t_ck = if chunk.is_some() {
                    pe.trace_start()
                } else {
                    None
                };
                match sig {
                    Some(s) => pe.put_symm_signal(
                        buf.offset(dst_at as usize),
                        buf.offset(src_at as usize),
                        nelems as usize,
                        stride as usize,
                        dst_pe as usize,
                        slot_ref(s),
                    ),
                    None => pe.put_symm(
                        buf.offset(dst_at as usize),
                        buf.offset(src_at as usize),
                        nelems as usize,
                        stride as usize,
                        dst_pe as usize,
                    ),
                }
                if let Some(c) = chunk {
                    pe.trace_emit(
                        t_ck,
                        TraceKind::Chunk,
                        Some(dst_pe as usize),
                        (nelems as usize * es) as u64,
                        c as u64,
                    );
                }
            }
            PlanStep::PutFrom {
                dst_at,
                src_lo,
                src_hi,
                nelems,
                stride,
                dst_pe,
                sig,
                chunk,
            } => {
                let t_ck = if chunk.is_some() {
                    pe.trace_start()
                } else {
                    None
                };
                let seg = &local_src[src_lo as usize..src_hi as usize];
                match sig {
                    Some(s) => pe.put_signal(
                        buf.offset(dst_at as usize),
                        seg,
                        nelems as usize,
                        stride as usize,
                        dst_pe as usize,
                        slot_ref(s),
                    ),
                    None => pe.put(
                        buf.offset(dst_at as usize),
                        seg,
                        nelems as usize,
                        stride as usize,
                        dst_pe as usize,
                    ),
                }
                if let Some(c) = chunk {
                    pe.trace_emit(
                        t_ck,
                        TraceKind::Chunk,
                        Some(dst_pe as usize),
                        (nelems as usize * es) as u64,
                        c as u64,
                    );
                }
            }
            PlanStep::PutNb {
                dst_at,
                src_lo,
                src_hi,
                nelems,
                stride,
                dst_pe,
                sig,
                chunk,
            } => {
                let t_ck = if chunk.is_some() {
                    pe.trace_start()
                } else {
                    None
                };
                let seg = &local_src[src_lo as usize..src_hi as usize];
                let h = pe.put_nb(
                    buf.offset(dst_at as usize),
                    seg,
                    nelems as usize,
                    stride as usize,
                    dst_pe as usize,
                );
                if let Some(s) = sig {
                    pe.signal_post_at(slot_ref(s), dst_pe as usize, h.completion_cycles());
                }
                if let Some(c) = chunk {
                    pe.trace_emit(
                        t_ck,
                        TraceKind::Chunk,
                        Some(dst_pe as usize),
                        (nelems as usize * es) as u64,
                        c as u64,
                    );
                }
            }
            PlanStep::GetSymm {
                dst_at,
                src_at,
                nelems,
                stride,
                src_pe,
            } => {
                pe.get_symm(
                    buf.offset(dst_at as usize),
                    buf.offset(src_at as usize),
                    nelems as usize,
                    stride as usize,
                    src_pe as usize,
                );
            }
            PlanStep::GetInto {
                dst_lo,
                dst_hi,
                src_at,
                nelems,
                stride,
                src_pe,
            } => {
                let seg = &mut local_dst[dst_lo as usize..dst_hi as usize];
                pe.get(
                    seg,
                    buf.offset(src_at as usize),
                    nelems as usize,
                    stride as usize,
                    src_pe as usize,
                );
            }
            PlanStep::GetLanding {
                src_at,
                nelems,
                stride,
                src_pe,
                ack,
            } => match ack {
                Some(s) => pe.get_signal(
                    landing,
                    buf.offset(src_at as usize),
                    nelems as usize,
                    stride as usize,
                    src_pe as usize,
                    slot_ref(s),
                ),
                None => pe.get(
                    landing,
                    buf.offset(src_at as usize),
                    nelems as usize,
                    stride as usize,
                    src_pe as usize,
                ),
            },
            PlanStep::FoldSymm {
                dst_at,
                nelems,
                stride,
                span,
            } => {
                let t_rd = pe.trace_start();
                let f = fold.expect("plan contains fold steps but no fold function was given");
                let mut mine = pe.heap_read_vec::<T>(buf.offset(dst_at as usize), span as usize);
                for j in 0..nelems as usize {
                    let at = j * stride as usize;
                    mine[at] = f(mine[at], landing[at]);
                }
                pe.charge(pe.timing().cost.alu_cycles * nelems as u64);
                pe.heap_write(buf.offset(dst_at as usize), &mine);
                pe.trace_emit(
                    t_rd,
                    TraceKind::Reduce,
                    None,
                    (nelems as usize * es) as u64,
                    0,
                );
            }
            PlanStep::FoldInto {
                dst_at,
                nelems,
                stride,
            } => {
                let t_rd = pe.trace_start();
                let f = fold.expect("plan contains fold steps but no fold function was given");
                for j in 0..nelems as usize {
                    let at = dst_at as usize + j * stride as usize;
                    local_dst[at] = f(local_dst[at], landing[j * stride as usize]);
                }
                pe.charge(pe.timing().cost.alu_cycles * nelems as u64);
                pe.trace_emit(
                    t_rd,
                    TraceKind::Reduce,
                    None,
                    (nelems as usize * es) as u64,
                    0,
                );
            }
        }
    }
    wait_cycles
}

/// Run a compiled plan to completion on this PE — the drop-in replacement
/// for [`schedule::execute_sync`] once the plan exists. Every PE must
/// call this collectively with the same plan.
///
/// # Panics
/// Panics if the plan was lowered for a different world size or element
/// size, or contains fold steps while `fold` is `None`.
pub fn execute_plan<T: XbrType>(
    pe: &Pe,
    plan: &Plan,
    buf: SymmRef<T>,
    local_src: &[T],
    local_dst: &mut [T],
    fold: Option<&dyn Fn(T, T) -> T>,
) {
    assert_eq!(
        plan.n_pes,
        pe.n_pes(),
        "plan built for {} PEs but the fabric has {}",
        plan.n_pes,
        pe.n_pes()
    );
    assert_eq!(
        plan.elem_bytes,
        std::mem::size_of::<T>(),
        "plan lowered for {}-byte elements but T is {} bytes",
        plan.elem_bytes,
        std::mem::size_of::<T>()
    );
    let prog = &plan.per_pe[pe.rank()];
    let t0 = pe.cycles();
    if plan.empty {
        pe.note_collective(plan.kind, prog.sample.sample(0, 0));
        return;
    }
    pe.progress_collective(Some(plan.kind));
    let t_ep = pe.trace_start();

    // Blocking plans run at the PE's current slot floor: zero normally,
    // above any outstanding nonblocking episodes otherwise, so mixing
    // blocking and in-flight collectives never collides slots.
    let base = pe.nb_slot_floor();
    // Same growth hazard as `issue_plan`: with episodes in flight the
    // table must already be big enough (growth frees it under them).
    assert!(
        base == 0 || plan.n_slots == 0 || base + plan.n_slots <= pe.signal_table_cap(),
        "PE {}: blocking collective above an overlap window needs {} \
         signal slots but the table holds {}; wait on an outstanding \
         handle, or pre-size with Pe::signal_table before issuing",
        pe.rank(),
        base + plan.n_slots,
        pe.signal_table_cap(),
    );
    let table = (plan.n_slots > 0).then(|| pe.signal_table(base + plan.n_slots));

    let mut landing: Vec<T> = pe.scratch_take();
    landing.resize(prog.landing_len, T::default());
    let wait_cycles = run_steps(
        pe,
        &prog.steps,
        base,
        table,
        buf,
        local_src,
        local_dst,
        fold,
        &mut landing,
    );
    pe.scratch_put(landing);

    pe.trace_emit(t_ep, TraceKind::Collective, None, 0, 0);
    pe.progress_collective(None);
    pe.note_collective(plan.kind, prog.sample.sample(pe.cycles() - t0, wait_cycles));
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Schedule-shape discriminator tags for [`PlanKey::shape`]: two
/// different generators must never share a key even if every scalar
/// field coincides.
pub mod tag {
    /// `broadcast_binomial`.
    pub const BROADCAST_BINOMIAL: u64 = 0;
    /// `broadcast_linear_sched`.
    pub const BROADCAST_LINEAR: u64 = 1;
    /// `broadcast_ring_sched`.
    pub const BROADCAST_RING: u64 = 2;
    /// `reduce_binomial`.
    pub const REDUCE_BINOMIAL: u64 = 3;
    /// `reduce_linear_sched`.
    pub const REDUCE_LINEAR: u64 = 4;
    /// `scatter_binomial`.
    pub const SCATTER_BINOMIAL: u64 = 5;
    /// `scatter_linear_sched`.
    pub const SCATTER_LINEAR: u64 = 6;
    /// `gather_binomial`.
    pub const GATHER_BINOMIAL: u64 = 7;
    /// `gather_linear_sched`.
    pub const GATHER_LINEAR: u64 = 8;
    /// `allreduce_recursive_doubling`.
    pub const ALLREDUCE_RD: u64 = 9;
    /// `all_gather_sched`.
    pub const ALL_GATHER: u64 = 10;
    /// `all_to_all_sched`.
    pub const ALL_TO_ALL: u64 = 11;
    /// `Team::broadcast_schedule`.
    pub const TEAM_BROADCAST: u64 = 12;
    /// `Team::reduce_schedule`.
    pub const TEAM_REDUCE: u64 = 13;
    /// Fused reduce-then-broadcast allreduce ([`super::allreduce_fused`]).
    pub const ALLREDUCE_FUSED: u64 = 14;
    /// `allreduce_rabenseifner`.
    pub const ALLREDUCE_RABENSEIFNER: u64 = 15;
    /// `allreduce_ring`.
    pub const ALLREDUCE_RING: u64 = 16;
    /// `all_gather_doubling_sched`.
    pub const ALL_GATHER_RD: u64 = 17;
    /// [`vcoll::scatterv_ring_sched`](crate::collectives::vcoll).
    pub const SCATTERV_RING: u64 = 18;
    /// [`vcoll::gatherv_ring_sched`](crate::collectives::vcoll).
    pub const GATHERV_RING: u64 = 19;
    /// [`vcoll::allgatherv_fan_sched`](crate::collectives::vcoll).
    pub const ALLGATHERV_FAN: u64 = 20;
    /// [`vcoll::allgatherv_ring_sched`](crate::collectives::vcoll).
    pub const ALLGATHERV_RING: u64 = 21;
    /// [`vcoll::allgatherv_dissemination_sched`](crate::collectives::vcoll).
    pub const ALLGATHERV_DISS: u64 = 22;
}

/// FNV-1a digest of a counts/displacement table, for keying irregular
/// collectives without carrying the whole table in the [`PlanKey`]: a
/// v-collective's schedule is determined by its per-PE counts, but an
/// `O(n)` shape vector would make key hashing and equality scale with
/// world size on every warm issue. The digest keeps keys `O(1)`; the
/// total element count rides separately in `PlanKey::nelems`, so a
/// (vanishingly unlikely) digest collision additionally needs matching
/// totals before two different tables could alias.
pub fn counts_digest(counts: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in counts {
        for b in (c as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// `(shape tag, key algorithm)` pair identifying one member of the
/// all-reduce family in a [`PlanKey`]. The tag is what disambiguates
/// plans; the algorithm additionally feeds the per-collective
/// algorithm-mask telemetry (ring shapes report as `Ring`).
pub fn allreduce_plan_id(algo: crate::collectives::extended::AllReduceAlgo) -> (u64, Algorithm) {
    use crate::collectives::extended::AllReduceAlgo;
    match algo {
        AllReduceAlgo::ReduceThenBroadcast => (tag::ALLREDUCE_FUSED, Algorithm::Binomial),
        AllReduceAlgo::RecursiveDoubling => (tag::ALLREDUCE_RD, Algorithm::Binomial),
        AllReduceAlgo::Rabenseifner => (tag::ALLREDUCE_RABENSEIFNER, Algorithm::Binomial),
        AllReduceAlgo::Ring => (tag::ALLREDUCE_RING, Algorithm::Ring),
        AllReduceAlgo::Auto => panic!("resolve AllReduceAlgo::Auto before keying a plan"),
    }
}

/// Everything that determines a lowered plan byte-for-byte: collective,
/// algorithm, the *requested* sync mode (Auto resolves deterministically
/// from the rest of the key), world size, root, payload geometry, element
/// size, and a shape vector carrying whatever else the generator consumed
/// (adjusted displacement tables, team members, generator tag).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Telemetry kind of the schedule.
    pub kind: CollectiveKind,
    /// Concrete algorithm shape (policy Auto is resolved *before* keying).
    pub algo: Algorithm,
    /// Requested sync mode, pre-resolution (`Auto` allowed: it resolves
    /// identically for identical keys).
    pub sync: SyncMode,
    /// World size.
    pub n_pes: usize,
    /// Root rank (0 for rootless collectives).
    pub root: usize,
    /// Element count.
    pub nelems: usize,
    /// Element stride.
    pub stride: usize,
    /// Element size in bytes.
    pub elem_bytes: usize,
    /// Generator tag plus any extra shape data (displacement tables,
    /// team members); first entry is always a [`tag`] constant.
    pub shape: Vec<u64>,
}

impl PlanKey {
    /// Key for the common root-collective shape: tag + scalars, no extra
    /// shape data.
    #[allow(clippy::too_many_arguments)]
    pub fn rooted(
        kind: CollectiveKind,
        algo: Algorithm,
        sync: SyncMode,
        n_pes: usize,
        root: usize,
        nelems: usize,
        stride: usize,
        elem_bytes: usize,
        tag: u64,
    ) -> Self {
        PlanKey {
            kind,
            algo,
            sync,
            n_pes,
            root,
            nelems,
            stride,
            elem_bytes,
            shape: vec![tag],
        }
    }
}

/// Cache telemetry surfaced through
/// [`RunReport::plan_cache`](crate::fabric::RunReport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a compiled plan.
    pub hits: u64,
    /// Lookups that lowered a new plan. Under concurrent issue each
    /// distinct key misses exactly once (builds run under the shard
    /// lock), so `misses == entries` after any run.
    pub misses: u64,
    /// Plans resident.
    pub entries: u64,
    /// Approximate bytes of compiled steps resident.
    pub bytes: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

const PLAN_CACHE_SHARDS: usize = 16;

struct PlanShard {
    map: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

/// Sharded, thread-safe plan memo. Shard selection hashes the key, so
/// concurrent lookups from many PEs (or the coop engine's work-stealing
/// workers) contend only when they race on the *same* collective shape —
/// and then the first arrival builds while the rest block and hit,
/// keeping the hit/miss counters exact (`misses == distinct keys`).
pub struct PlanCache {
    shards: Vec<PlanShard>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            shards: (0..PLAN_CACHE_SHARDS)
                .map(|_| PlanShard {
                    map: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    bytes: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn shard_of(&self, key: &PlanKey) -> &PlanShard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Fetch the plan for `key`, lowering it with `build` on first use.
    /// The build runs under the shard lock: peers racing on the same key
    /// block briefly and then hit, so every distinct key is lowered
    /// exactly once and the counters stay race-free.
    pub fn get_or_build(&self, key: &PlanKey, build: impl FnOnce() -> Plan) -> Arc<Plan> {
        let shard = self.shard_of(key);
        let mut map = shard.map.lock().unwrap();
        if let Some(p) = map.get(key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        shard
            .bytes
            .fetch_add(plan.approx_bytes() as u64, Ordering::Relaxed);
        map.insert(key.clone(), Arc::clone(&plan));
        plan
    }

    /// Aggregate hit/miss/footprint counters over all shards.
    pub fn stats(&self) -> PlanCacheStats {
        let mut s = PlanCacheStats::default();
        for shard in &self.shards {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.bytes += shard.bytes.load(Ordering::Relaxed);
            s.entries += shard.map.lock().unwrap().len() as u64;
        }
        s
    }
}

// ---------------------------------------------------------------------------
// The hot-path entry the collective wrappers route through
// ---------------------------------------------------------------------------

fn algo_bit(a: Algorithm) -> u64 {
    1 << match a {
        Algorithm::Binomial => 0,
        Algorithm::Linear => 1,
        Algorithm::Ring => 2,
    }
}

fn sync_bit(s: SyncMode) -> u64 {
    1 << match s {
        SyncMode::Barrier => 0,
        SyncMode::Signaled => 1,
        SyncMode::Pipelined => 2,
        SyncMode::Auto => 3,
    }
}

/// Issue one collective episode, through the plan cache when the fabric
/// has one ([`FabricConfig::with_plan_cache`](crate::fabric::FabricConfig))
/// and through the interpretive executor otherwise. `build` is only
/// invoked on a cache miss (or on the interpretive path), so a warm
/// issue never materialises the `CommSchedule` at all.
///
/// Both paths record the resolved algorithm/sync choice in the
/// collective's [`CollectiveRecord`](crate::fabric::CollectiveRecord), so
/// telemetry shows what actually ran regardless of caching.
#[allow(clippy::too_many_arguments)]
pub fn run_schedule<T: XbrType>(
    pe: &Pe,
    key: PlanKey,
    build: impl FnOnce() -> CommSchedule,
    buf: SymmRef<T>,
    local_src: &[T],
    local_dst: &mut [T],
    fold: Option<&dyn Fn(T, T) -> T>,
    sync: SyncMode,
) {
    let es = std::mem::size_of::<T>();
    debug_assert_eq!(es, key.elem_bytes, "key element size disagrees with T");
    match pe.plan_cache() {
        Some(cache) => {
            let plan = cache.get_or_build(&key, || lower(&build(), sync, es));
            pe.note_choice(plan.kind, algo_bit(key.algo), sync_bit(plan.sync));
            execute_plan(pe, &plan, buf, local_src, local_dst, fold);
        }
        None => {
            let sched = build();
            pe.note_choice(
                sched.kind,
                algo_bit(key.algo),
                sync_bit(sched.resolve_sync(sync, es)),
            );
            schedule::execute_sync(pe, &sched, buf, local_src, local_dst, fold, sync);
        }
    }
}

// ---------------------------------------------------------------------------
// Nonblocking / persistent collectives
// ---------------------------------------------------------------------------

/// Fused allreduce schedule: binomial reduction to rank 0 followed by a
/// binomial broadcast from rank 0, as **one** schedule — the composition
/// the paper prescribes, without the intermediate barrier/read-out round
/// trip of [`crate::collectives::extended::reduce_all`]. Tagged
/// [`CollectiveKind::AllReduce`].
pub fn allreduce_fused(n_pes: usize, nelems: usize) -> CommSchedule {
    let mut sched = reduce_binomial(n_pes, 0, nelems, 1);
    let bcast = broadcast_binomial(n_pes, 0, nelems, 1);
    sched.stages.extend(bcast.stages);
    sched.kind = CollectiveKind::AllReduce;
    sched
}

/// What [`CollHandle::finish`] must do with the handle's staging buffer
/// after the drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Readout {
    /// Nothing to copy out (broadcast into a caller-owned buffer).
    None,
    /// The root copies `nelems` elements out (reduce).
    Root { root: usize, nelems: usize },
    /// Every PE copies `nelems` elements out (allreduce).
    All { nelems: usize },
}

/// An in-flight nonblocking collective, produced by [`ixbroadcast`],
/// [`ixreduce`], [`ixallreduce`] or a persistent plan's `start`.
///
/// SPMD discipline: every PE must issue the same handles in the same
/// order and wait on them in issue order. Overlapping episodes must
/// touch disjoint symmetric buffers. While handles are in flight,
/// blocking collectives remain safe on the compiled-plan path (they run
/// above the outstanding slot window); see
/// [`Pe::signal_table`](crate::fabric::Pe) for pre-sizing when many
/// episodes overlap.
///
/// Dropping a live handle completes the episode exactly as
/// [`CollHandle::wait`] would — drain, closing barriers, slot-window
/// release — minus the local read-out. An abandoned episode must not
/// strand its in-flight signal slots or the episode cursor: those are
/// what every *later* issue's slot window is rebased on, so a leak here
/// poisons the fabric for all subsequent nonblocking collectives. Like
/// `wait`, the drop is collective: every PE must retire the episode at
/// the same point in issue order.
#[must_use = "an issued collective must be waited on"]
pub struct CollHandle<'a, T: XbrType> {
    pe: &'a Pe<'a>,
    plan: Arc<Plan>,
    buf: SymmRef<T>,
    base: usize,
    t0: u64,
    t_ep: Option<u64>,
    wait_cycles: u64,
    staging: Option<SymmAlloc<T>>,
    owns_staging: bool,
    readout: Readout,
    done: bool,
}

fn plan_for(
    pe: &Pe,
    key: &PlanKey,
    sync: SyncMode,
    build: impl FnOnce() -> CommSchedule,
) -> Arc<Plan> {
    match pe.plan_cache() {
        Some(cache) => cache.get_or_build(key, || lower(&build(), sync, key.elem_bytes)),
        // Cache disabled: nonblocking issue still needs a compiled plan
        // (the interpretive executor cannot split issue from drain).
        None => Arc::new(lower(&build(), sync, key.elem_bytes)),
    }
}

/// Issue `plan`'s pre-drain steps and return the handle bookkeeping.
fn issue_plan<'a, T: XbrType>(
    pe: &'a Pe,
    plan: Arc<Plan>,
    buf: SymmRef<T>,
    local_src: &[T],
    fold: Option<&dyn Fn(T, T) -> T>,
) -> CollHandle<'a, T> {
    let prog = &plan.per_pe[pe.rank()];
    let t0 = pe.cycles();
    if plan.empty {
        pe.note_collective(plan.kind, prog.sample.sample(0, 0));
        return CollHandle {
            pe,
            plan,
            buf,
            base: 0,
            t0,
            t_ep: None,
            wait_cycles: 0,
            staging: None,
            owns_staging: false,
            readout: Readout::None,
            done: true,
        };
    }
    pe.progress_collective(Some(plan.kind));
    let t_ep = pe.trace_start();
    let (base, table) = if plan.n_slots > 0 {
        let base = pe.nb_slot_reserve(plan.n_slots);
        let table = if base == 0 {
            // Headroom on the first issue of an overlap window: size the
            // table for a deep burst of same-shaped episodes so later
            // issues never need to grow it while signals are live.
            pe.signal_table(plan.n_slots * OVERLAP_HEADROOM)
        } else {
            // Growing the table now would free-and-rezero it under the
            // episodes already in flight (and barrier mid-issue),
            // stranding their completion signals in a silent deadlock;
            // refuse loudly instead.
            assert!(
                base + plan.n_slots <= pe.signal_table_cap(),
                "PE {}: nonblocking overlap window needs {} signal slots \
                 but the table holds {}; wait on an outstanding handle, \
                 or pre-size with Pe::signal_table before the first issue",
                pe.rank(),
                base + plan.n_slots,
                pe.signal_table_cap(),
            );
            pe.signal_table(base + plan.n_slots)
        };
        (base, Some(table))
    } else {
        // Barrier-discipline plans: no slots, but the episode still owns
        // an in-flight reservation so `finish` bookkeeping is uniform.
        (pe.nb_slot_reserve(0), None)
    };
    let mut landing: Vec<T> = pe.scratch_take();
    landing.resize(prog.landing_len, T::default());
    let mut local_dst: [T; 0] = [];
    let wait_cycles = run_steps(
        pe,
        &prog.steps[..prog.drain_from],
        base,
        table,
        buf,
        local_src,
        &mut local_dst,
        fold,
        &mut landing,
    );
    pe.scratch_put(landing);
    CollHandle {
        pe,
        plan,
        buf,
        base,
        t0,
        t_ep,
        wait_cycles,
        staging: None,
        owns_staging: false,
        readout: Readout::None,
        done: false,
    }
}

impl<T: XbrType> CollHandle<'_, T> {
    /// `true` when every drain signal this PE still owes has already
    /// arrived — [`CollHandle::wait`] will not stall on a signal (it may
    /// still synchronise at the collective's closing barrier). Does not
    /// consume anything; safe to poll.
    pub fn test(&self, pe: &Pe) -> bool {
        if self.done {
            return true;
        }
        let prog = &self.plan.per_pe[pe.rank()];
        if self.plan.n_slots == 0 {
            return true;
        }
        let table = pe.signal_table(self.base + self.plan.n_slots);
        prog.steps[prog.drain_from..].iter().all(|s| match s {
            PlanStep::Wait { slot } => pe.signal_peek(table.offset(self.base + *slot as usize)),
            _ => true,
        })
    }

    /// Drain the episode (collective: every PE must call in issue order)
    /// and release its slot window. Epilogue copies (reduce/allreduce
    /// read-out) land in `dest` when present; `None` runs the same
    /// barriers but skips the local copy, so a dropping PE stays in step
    /// with peers that `wait_into`. Idempotent: the post-drop no-op run
    /// sees `done`, an empty readout and no staging.
    fn finish(&mut self, pe: &Pe, mut dest: Option<&mut [T]>) {
        if !self.done {
            let prog = &self.plan.per_pe[pe.rank()];
            let table =
                (self.plan.n_slots > 0).then(|| pe.signal_table(self.base + self.plan.n_slots));
            let mut landing: [T; 0] = [];
            let mut local_dst: [T; 0] = [];
            self.wait_cycles += run_steps(
                pe,
                &prog.steps[prog.drain_from..],
                self.base,
                table,
                self.buf,
                &[],
                &mut local_dst,
                None,
                &mut landing,
            );
            pe.trace_emit(self.t_ep, TraceKind::Collective, None, 0, 0);
            pe.progress_collective(None);
            pe.note_collective(
                self.plan.kind,
                prog.sample.sample(pe.cycles() - self.t0, self.wait_cycles),
            );
            pe.nb_slot_release();
            self.done = true;
        }
        let staging = self.staging.take();
        match self.readout {
            Readout::None => {}
            Readout::Root { root, nelems } => {
                let staging = staging.as_ref().expect("rooted readout requires staging");
                if pe.rank() == root && nelems > 0 {
                    if let Some(dest) = dest.as_deref_mut() {
                        pe.heap_read_strided(staging.whole(), &mut dest[..nelems], nelems, 1);
                    }
                }
                if nelems > 0 {
                    pe.barrier();
                }
            }
            Readout::All { nelems } => {
                let staging = staging.as_ref().expect("all readout requires staging");
                if nelems > 0 {
                    if let Some(dest) = dest {
                        pe.heap_read_strided(staging.whole(), &mut dest[..nelems], nelems, 1);
                    }
                    pe.barrier();
                }
            }
        }
        self.readout = Readout::None;
        if self.owns_staging {
            if let Some(s) = staging {
                pe.shared_free(s);
            }
            self.owns_staging = false;
        }
    }

    /// Complete a collective with no local read-out ([`ixbroadcast`] and
    /// persistent broadcasts: the result is already in the symmetric
    /// destination).
    pub fn wait(mut self, pe: &Pe) {
        debug_assert!(
            matches!(self.readout, Readout::None),
            "this handle produces output; use wait_into"
        );
        self.finish(pe, None);
    }

    /// Complete a collective whose result is copied into `dest`
    /// ([`ixreduce`] at the root, [`ixallreduce`] everywhere).
    pub fn wait_into(mut self, pe: &Pe, dest: &mut [T]) {
        self.finish(pe, Some(dest));
    }
}

impl<T: XbrType> Drop for CollHandle<'_, T> {
    fn drop(&mut self) {
        // A panicking PE cannot be asked to run collective barriers; the
        // watchdog/deadlock reporter owns that failure path.
        if std::thread::panicking() {
            return;
        }
        let pe = self.pe;
        self.finish(pe, None);
    }
}

/// Nonblocking broadcast of `nelems` elements from `root`'s `src` into
/// the symmetric `dest` on every PE. Collective call; complete with
/// [`CollHandle::wait`]. Under the signaled/pipelined disciplines,
/// non-root PEs return immediately after issuing their forwarding work
/// and absorb the incoming transfer at `wait` — the overlap window.
pub fn ixbroadcast<'a, T: XbrType>(
    pe: &'a Pe,
    dest: &SymmAlloc<T>,
    src: &[T],
    nelems: usize,
    root: usize,
    sync: SyncMode,
) -> CollHandle<'a, T> {
    let n_pes = pe.n_pes();
    assert!(root < n_pes, "root {root} out of range");
    if pe.rank() == root {
        pe.heap_write_strided(dest.whole(), src, nelems, 1);
    }
    let key = PlanKey::rooted(
        CollectiveKind::Broadcast,
        Algorithm::Binomial,
        sync,
        n_pes,
        root,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag::BROADCAST_BINOMIAL,
    );
    let plan = plan_for(pe, &key, sync, || {
        broadcast_binomial(n_pes, root, nelems, 1)
    });
    issue_plan(pe, plan, dest.whole(), &[], None)
}

/// Nonblocking reduction of every PE's symmetric `src` window toward
/// `root`. Complete with [`CollHandle::wait_into`]; the root's `dest`
/// receives the folded `nelems` elements.
pub fn ixreduce<'a, T: XbrType>(
    pe: &'a Pe,
    src: &SymmAlloc<T>,
    nelems: usize,
    root: usize,
    f: impl Fn(T, T) -> T + Copy,
    sync: SyncMode,
) -> CollHandle<'a, T> {
    let n_pes = pe.n_pes();
    assert!(root < n_pes, "root {root} out of range");
    let staging = pe.shared_malloc::<T>(nelems.max(1));
    if nelems > 0 {
        pe.get_symm(staging.whole(), src.whole(), nelems, 1, pe.rank());
        pe.barrier();
    }
    let key = PlanKey::rooted(
        CollectiveKind::Reduce,
        Algorithm::Binomial,
        sync,
        n_pes,
        root,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag::REDUCE_BINOMIAL,
    );
    let plan = plan_for(pe, &key, sync, || reduce_binomial(n_pes, root, nelems, 1));
    let mut h = issue_plan(pe, plan, staging.whole(), &[], Some(&f));
    h.staging = Some(staging);
    h.owns_staging = true;
    h.readout = Readout::Root { root, nelems };
    h
}

/// Nonblocking allreduce. Complete with [`CollHandle::wait_into`]; every
/// PE's `dest` receives the folded `nelems` elements. The strategy is
/// chosen per shape by
/// [`AllReduceAlgo::Auto`](crate::collectives::extended::AllReduceAlgo)
/// — the same calibrated family as the blocking [`reduce_all`] path, so
/// warm plans are shared between the two.
pub fn ixallreduce<'a, T: XbrType>(
    pe: &'a Pe,
    src: &SymmAlloc<T>,
    nelems: usize,
    f: impl Fn(T, T) -> T + Copy,
    sync: SyncMode,
) -> CollHandle<'a, T> {
    use crate::collectives::extended::AllReduceAlgo;
    ixallreduce_algo(pe, src, nelems, f, AllReduceAlgo::Auto, sync)
}

/// [`ixallreduce`] with an explicit [`AllReduceAlgo`]: every member of
/// the family — the fused reduce-then-broadcast schedule
/// ([`allreduce_fused`]), recursive doubling, Rabenseifner and ring —
/// lowers through the plan cache and issues nonblocking.
pub fn ixallreduce_algo<'a, T: XbrType>(
    pe: &'a Pe,
    src: &SymmAlloc<T>,
    nelems: usize,
    f: impl Fn(T, T) -> T + Copy,
    algo: crate::collectives::extended::AllReduceAlgo,
    sync: SyncMode,
) -> CollHandle<'a, T> {
    use crate::collectives::extended::{allreduce_schedule, AllReduceAlgo};
    let n_pes = pe.n_pes();
    let algo = algo.resolve(n_pes, nelems * std::mem::size_of::<T>());
    let (tag, key_algo) = allreduce_plan_id(algo);
    let staging = pe.shared_malloc::<T>(nelems.max(1));
    if nelems > 0 {
        pe.get_symm(staging.whole(), src.whole(), nelems, 1, pe.rank());
        pe.barrier();
    }
    let key = PlanKey::rooted(
        CollectiveKind::AllReduce,
        key_algo,
        sync,
        n_pes,
        0,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag,
    );
    let plan = plan_for(pe, &key, sync, || match algo {
        AllReduceAlgo::ReduceThenBroadcast => allreduce_fused(n_pes, nelems),
        direct => allreduce_schedule(direct, n_pes, nelems),
    });
    let mut h = issue_plan(pe, plan, staging.whole(), &[], Some(&f));
    h.staging = Some(staging);
    h.owns_staging = true;
    h.readout = Readout::All { nelems };
    h
}

/// A persistent broadcast: plan compiled (and destination bound) once,
/// then issued any number of times at service rate with
/// [`PersistentBroadcast::start`] — the `plan_create`/`plan_start` shape
/// of MPI persistent collectives.
pub struct PersistentBroadcast<T: XbrType> {
    plan: Arc<Plan>,
    dest: SymmAlloc<T>,
    nelems: usize,
    root: usize,
}

/// Compile a persistent broadcast plan over `dest`. Pure local work (plus
/// at most one shared lowering in the plan cache) — no communication.
pub fn plan_create_broadcast<T: XbrType>(
    pe: &Pe,
    dest: &SymmAlloc<T>,
    nelems: usize,
    root: usize,
    sync: SyncMode,
) -> PersistentBroadcast<T> {
    let n_pes = pe.n_pes();
    assert!(root < n_pes, "root {root} out of range");
    let key = PlanKey::rooted(
        CollectiveKind::Broadcast,
        Algorithm::Binomial,
        sync,
        n_pes,
        root,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag::BROADCAST_BINOMIAL,
    );
    let plan = plan_for(pe, &key, sync, || {
        broadcast_binomial(n_pes, root, nelems, 1)
    });
    PersistentBroadcast {
        plan,
        dest: *dest,
        nelems,
        root,
    }
}

impl<T: XbrType> PersistentBroadcast<T> {
    /// Issue one episode (collective call; `src` is read on the root).
    pub fn start<'a>(&self, pe: &'a Pe, src: &[T]) -> CollHandle<'a, T> {
        if pe.rank() == self.root {
            pe.heap_write_strided(self.dest.whole(), src, self.nelems, 1);
        }
        issue_plan(pe, Arc::clone(&self.plan), self.dest.whole(), &[], None)
    }
}

/// A persistent allreduce: plan and symmetric staging bound at creation;
/// each [`PersistentAllReduce::start`] folds the current contents of the
/// bound `src` window. Free the staging with
/// [`PersistentAllReduce::destroy`].
pub struct PersistentAllReduce<T: XbrType> {
    plan: Arc<Plan>,
    src: SymmAlloc<T>,
    staging: SymmAlloc<T>,
    nelems: usize,
}

/// Create a persistent allreduce over the symmetric `src` window.
/// Collective call (allocates shared staging).
pub fn plan_create_allreduce<T: XbrType>(
    pe: &Pe,
    src: &SymmAlloc<T>,
    nelems: usize,
    sync: SyncMode,
) -> PersistentAllReduce<T> {
    let n_pes = pe.n_pes();
    let key = PlanKey::rooted(
        CollectiveKind::AllReduce,
        Algorithm::Binomial,
        sync,
        n_pes,
        0,
        nelems,
        1,
        std::mem::size_of::<T>(),
        tag::ALLREDUCE_FUSED,
    );
    let plan = plan_for(pe, &key, sync, || allreduce_fused(n_pes, nelems));
    PersistentAllReduce {
        plan,
        src: *src,
        staging: pe.shared_malloc::<T>(nelems.max(1)),
        nelems,
    }
}

impl<T: XbrType> PersistentAllReduce<T> {
    /// Issue one episode over the bound `src` window (collective call).
    pub fn start<'a>(&self, pe: &'a Pe, f: impl Fn(T, T) -> T + Copy) -> CollHandle<'a, T> {
        if self.nelems > 0 {
            pe.get_symm(
                self.staging.whole(),
                self.src.whole(),
                self.nelems,
                1,
                pe.rank(),
            );
            pe.barrier();
        }
        let mut h = issue_plan(
            pe,
            Arc::clone(&self.plan),
            self.staging.whole(),
            &[],
            Some(&f),
        );
        h.staging = Some(self.staging);
        h.owns_staging = false;
        h.readout = Readout::All {
            nelems: self.nelems,
        };
        h
    }

    /// Release the staging buffer (collective call).
    pub fn destroy(self, pe: &Pe) {
        pe.shared_free(self.staging);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::schedule::{broadcast_ring_sched, reduce_linear_sched};
    use crate::collectives::verify::{check_schedule, CollectiveSpec, ModelConfig};
    use crate::fabric::{Fabric, FabricConfig};

    /// Lowering resolves Auto exactly like the interpretive executor.
    #[test]
    fn lowering_resolves_auto_once() {
        let sched = broadcast_binomial(8, 0, 4, 1);
        let plan = lower(&sched, SyncMode::Auto, 8);
        assert_eq!(plan.sync, sched.resolve_sync(SyncMode::Auto, 8));
        // Small payload, 8 PEs, multi-stage → Signaled.
        assert_eq!(plan.sync, SyncMode::Signaled);
        assert!(plan.n_slots > 0);
    }

    /// Barrier plans are fully issued (empty drain); signaled plans keep
    /// their drain tail.
    #[test]
    fn drain_split_matches_discipline() {
        let sched = broadcast_binomial(8, 0, 16, 1);
        let barrier = lower(&sched, SyncMode::Barrier, 8);
        for p in &barrier.per_pe {
            assert_eq!(p.drain_from, p.steps.len());
        }
        let signaled = lower(&sched, SyncMode::Signaled, 8);
        for p in &signaled.per_pe {
            assert!(p.drain_from < p.steps.len());
            assert!(matches!(
                p.steps[p.drain_from],
                PlanStep::StageStart { si } if si as usize == signaled.n_stages
            ));
        }
    }

    /// Empty schedules lower to telemetry-only plans.
    #[test]
    fn empty_schedule_lowers_empty() {
        let sched = broadcast_binomial(1, 0, 16, 1);
        let plan = lower(&sched, SyncMode::Signaled, 8);
        assert!(plan.empty);
        assert_eq!(plan.n_slots, 0);
        let sched = broadcast_binomial(4, 0, 0, 1);
        let plan = lower(&sched, SyncMode::Signaled, 8);
        assert!(plan.empty);
    }

    /// The static sample template matches the op/byte structure of the
    /// schedule: a binomial broadcast moves n-1 puts of nelems each.
    #[test]
    fn template_counts_match_schedule() {
        for n in [2usize, 3, 5, 8] {
            let sched = broadcast_binomial(n, 0, 4, 1);
            let plan = lower(&sched, SyncMode::Barrier, 8);
            let puts: u64 = plan.per_pe.iter().map(|p| p.sample.puts).sum();
            assert_eq!(puts, (n - 1) as u64, "n={n}");
            let bytes: u64 = plan.per_pe.iter().map(|p| p.sample.bytes_put).sum();
            assert_eq!(bytes, ((n - 1) * 4 * 8) as u64, "n={n}");
        }
    }

    /// Cache: same key hits, different shapes build distinct plans, and
    /// the counters account every lookup.
    #[test]
    fn cache_hits_and_misses() {
        let cache = PlanCache::new();
        let key = |n: usize, nelems: usize| {
            PlanKey::rooted(
                CollectiveKind::Broadcast,
                Algorithm::Binomial,
                SyncMode::Auto,
                n,
                0,
                nelems,
                1,
                8,
                tag::BROADCAST_BINOMIAL,
            )
        };
        let k1 = key(4, 8);
        let p1 = cache.get_or_build(&k1, || {
            lower(&broadcast_binomial(4, 0, 8, 1), SyncMode::Auto, 8)
        });
        let p2 = cache.get_or_build(&k1, || unreachable!("second lookup must hit"));
        assert!(Arc::ptr_eq(&p1, &p2));
        let k2 = key(4, 9);
        let p3 = cache.get_or_build(&k2, || {
            lower(&broadcast_binomial(4, 0, 9, 1), SyncMode::Auto, 8)
        });
        assert!(!Arc::ptr_eq(&p1, &p3));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 2);
        assert!(s.bytes > 0);
    }

    /// The fused allreduce schedule satisfies the conformance oracle's
    /// AllReduce spec under every concrete sync mode (sizes 2–8).
    #[test]
    fn fused_allreduce_passes_oracle() {
        for n in 2..=8 {
            let sched = allreduce_fused(n, 3);
            for sync in SyncMode::CONCRETE {
                let report = check_schedule(
                    &sched,
                    sync,
                    &CollectiveSpec::AllReduce { nelems: 3 },
                    &ModelConfig::default(),
                );
                assert!(report.ok(), "n={n} sync={sync:?}: {}", report.summary());
            }
        }
    }

    /// Plan execution against the live fabric: fused allreduce folds and
    /// redistributes under every concrete sync mode.
    #[test]
    fn fused_allreduce_executes() {
        for n in [1usize, 2, 5, 8] {
            for sync in SyncMode::CONCRETE {
                let report = Fabric::run(FabricConfig::new(n), move |pe| {
                    let src = pe.shared_malloc::<u64>(2);
                    pe.heap_write(src.whole(), &[pe.rank() as u64 + 1, 10]);
                    pe.barrier();
                    let mut d = [0u64; 2];
                    ixallreduce(pe, &src, 2, |a, b| a + b, sync).wait_into(pe, &mut d);
                    pe.barrier();
                    d
                });
                let n64 = n as u64;
                let expect = [n64 * (n64 + 1) / 2, 10 * n64];
                for (rank, got) in report.results.iter().enumerate() {
                    assert_eq!(got, &expect, "n={n} sync={sync:?} rank={rank}");
                }
                assert_eq!(report.stats.signals, report.stats.signal_waits);
            }
        }
    }

    /// Ring and linear generators lower cleanly too (barrier-only stages,
    /// zero-op stages, GetFoldInto).
    #[test]
    fn other_generators_lower() {
        let ring = broadcast_ring_sched(5, 1, 6, 1);
        let plan = lower(&ring, SyncMode::Signaled, 8);
        assert_eq!(plan.n_stages, 4);
        let lin = reduce_linear_sched(4, 2, 3, 1);
        let plan = lower(&lin, SyncMode::Barrier, 8);
        assert!(plan
            .per_pe
            .iter()
            .flat_map(|p| p.steps.iter())
            .any(|s| matches!(s, PlanStep::FoldInto { .. })));
    }
}
