//! Offline stand-in for the [rand](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the workspace vendors this minimal implementation as a path dependency
//! under the same package name. It provides exactly the 0.8-series
//! surface the tests use: `SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer `Range`/`RangeInclusive`. The generator
//! is xoshiro-flavoured splitmix64 — deterministic for a given seed, but
//! the streams differ from upstream rand's (tests here only rely on
//! determinism, not on specific draws).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler (integer subset).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "gen_range on empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled to produce a `T`. Mirroring upstream rand,
/// this is one blanket impl per range shape so type inference flows from
/// the call-site's use of the result into the range literals.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators (subset: [`SmallRng`]).
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let w = rng.gen_range(1usize..=9);
            assert!((1..=9).contains(&w));
        }
    }
}
