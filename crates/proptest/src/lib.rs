//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, providing the subset of the 1.x API this workspace uses.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the workspace vendors this minimal implementation as a path dependency
//! under the same package name. Semantics: strategies are pure generators
//! over a deterministic splitmix64 stream seeded from the test name, so
//! every run explores the same inputs (reproducible CI). There is **no
//! shrinking** — a failing case panics with the generated values printed
//! by the `prop_assert*` message instead.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — uniform strategies for primitive types.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draw one uniformly-distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }
}

pub mod array {
    //! Fixed-size array strategies (`prop::array::uniform8`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 8]`.
    pub struct Uniform8<S>(S);

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Eight independent draws from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

    pub mod prop {
        //! `prop::collection::vec`, `prop::sample::select`, …
        pub use crate::{array, collection, sample};
    }
}
