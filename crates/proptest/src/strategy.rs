//! The [`Strategy`] trait and combinators.
//!
//! A strategy is a pure generator: `generate` draws one value from the
//! deterministic RNG. Combinators mirror the proptest names this
//! workspace uses (`prop_map`, `boxed`, tuples, ranges, `Just`, unions).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// A type-erased strategy (the arm type of `prop_oneof!`).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.arms.len();
        self.arms[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `prop_oneof![a, b, c]` — uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// `prop_compose!` — define a function returning a derived strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// `prop_assert!` — assert inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `proptest! { … }` — run each contained `#[test]` fn over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body ($crate::test_runner::Config::default()) $($rest)* }
    };
}
