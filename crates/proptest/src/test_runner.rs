//! The deterministic RNG and run configuration.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// splitmix64 — deterministic, seeded from the property name so every
/// run (and every CI machine) explores the same inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a of the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
