//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the workspace vendors this minimal implementation as a path dependency
//! under the same package name. It runs each benchmark for a fixed warm-up
//! plus measurement budget and prints median per-iteration time (and
//! throughput when configured) — enough to compare algorithms locally,
//! with none of upstream's statistics machinery.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `iter`.
pub struct Bencher {
    /// Measured median seconds per iteration (filled by `iter`).
    median: f64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also used to size the batch.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~20 samples within a ~200 ms budget.
        let per_sample = Duration::from_millis(10);
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        let mut samples = Vec::with_capacity(20);
        for _ in 0..20 {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median = samples[samples.len() / 2];
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, median: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10.1} MiB/s", b as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  {:>10.1} Melem/s", e as f64 / median / 1e6),
        None => String::new(),
    };
    println!("{name:<40} {:>12}{rate}", human_time(median));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { median: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.median,
            self.throughput,
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { median: 0.0 };
        f(&mut b);
        report(name, b.median, None);
        self
    }
}

/// `criterion_group!(name, fn1, fn2, …)` — bundle bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group, …)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
