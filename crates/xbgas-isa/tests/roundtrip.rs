//! Property tests: every representable instruction survives an
//! encode → decode roundtrip, and decoding arbitrary words never panics.

use proptest::prelude::*;
use xbgas_isa::{inst, *};

fn arb_xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(XReg::new)
}

fn arb_ereg() -> impl Strategy<Value = EReg> {
    (0u8..32).prop_map(EReg::new)
}

fn arb_load_width() -> impl Strategy<Value = LoadWidth> {
    prop::sample::select(LoadWidth::ALL.to_vec())
}

fn arb_store_width() -> impl Strategy<Value = StoreWidth> {
    prop::sample::select(StoreWidth::ALL.to_vec())
}

fn arb_imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

prop_compose! {
    fn arb_branch_offset()(half in -2048i32..=2047) -> i32 { half * 2 }
}

prop_compose! {
    fn arb_jal_offset()(half in -524288i32..=524287) -> i32 { half * 2 }
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_xreg(), -524288i32..=524287).prop_map(|(rd, imm20)| Inst::Lui { rd, imm20 }),
        (arb_xreg(), -524288i32..=524287).prop_map(|(rd, imm20)| Inst::Auipc { rd, imm20 }),
        (arb_xreg(), arb_jal_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (arb_xreg(), arb_xreg(), arb_imm12()).prop_map(|(rd, rs1, imm)| Inst::Jalr {
            rd,
            rs1,
            imm
        }),
        (
            prop::sample::select(BranchCond::ALL.to_vec()),
            arb_xreg(),
            arb_xreg(),
            arb_branch_offset()
        )
            .prop_map(|(cond, rs1, rs2, offset)| Inst::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (arb_load_width(), arb_xreg(), arb_xreg(), arb_imm12()).prop_map(
            |(width, rd, rs1, imm)| Inst::Load {
                width,
                rd,
                rs1,
                imm
            }
        ),
        (arb_store_width(), arb_xreg(), arb_xreg(), arb_imm12()).prop_map(
            |(width, rs1, rs2, imm)| Inst::Store {
                width,
                rs1,
                rs2,
                imm
            }
        ),
        (
            prop::sample::select(AluImmOp::ALL.to_vec()),
            arb_xreg(),
            arb_xreg(),
            arb_imm12()
        )
            .prop_map(|(op, rd, rs1, imm)| {
                let imm = if op.is_shift() {
                    imm.unsigned_abs() as i32 % if op.is_word() { 32 } else { 64 }
                } else {
                    imm
                };
                Inst::OpImm { op, rd, rs1, imm }
            }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            arb_xreg(),
            arb_xreg(),
            arb_xreg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (
            prop::sample::select(inst::CsrOp::ALL.to_vec()),
            arb_xreg(),
            arb_xreg(),
            0u16..4096
        )
            .prop_map(|(op, rd, rs1, csr)| Inst::Csr { op, rd, rs1, csr }),
        (arb_load_width(), arb_xreg(), arb_xreg(), arb_imm12()).prop_map(
            |(width, rd, rs1, imm)| Inst::ELoad {
                width,
                rd,
                rs1,
                imm
            }
        ),
        (arb_store_width(), arb_xreg(), arb_xreg(), arb_imm12()).prop_map(
            |(width, rs1, rs2, imm)| Inst::EStore {
                width,
                rs1,
                rs2,
                imm
            }
        ),
        (arb_load_width(), arb_xreg(), arb_xreg(), arb_ereg()).prop_map(
            |(width, rd, rs1, ext2)| Inst::ERLoad {
                width,
                rd,
                rs1,
                ext2
            }
        ),
        (arb_store_width(), arb_xreg(), arb_xreg(), arb_ereg()).prop_map(
            |(width, rs1, rs2, ext3)| Inst::ERStore {
                width,
                rs1,
                rs2,
                ext3
            }
        ),
        (arb_ereg(), arb_xreg(), arb_ereg()).prop_map(|(ext1, rs1, ext2)| Inst::ERse {
            ext1,
            rs1,
            ext2
        }),
        (arb_ereg(), arb_xreg(), arb_ereg()).prop_map(|(ext1, rs1, ext2)| Inst::ERle {
            ext1,
            rs1,
            ext2
        }),
        (arb_xreg(), arb_ereg(), arb_imm12()).prop_map(|(rd, ext1, imm)| Inst::Eaddi {
            rd,
            ext1,
            imm
        }),
        (arb_ereg(), arb_xreg(), arb_imm12()).prop_map(|(ext, rs1, imm)| Inst::Eaddie {
            ext,
            rs1,
            imm
        }),
        (arb_ereg(), arb_ereg(), arb_imm12()).prop_map(|(ext1, ext2, imm)| Inst::Eaddix {
            ext1,
            ext2,
            imm
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(&inst).expect("generated instruction must encode");
        let back = decode(word).expect("encoded instruction must decode");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, but never a panic.
    }

    #[test]
    fn decode_encode_refixpoint(word in any::<u32>()) {
        // Any word that decodes must re-encode to an equivalent instruction
        // (not necessarily bit-identical: e.g. fence/hint fields are
        // canonicalised), and the re-encoded form must be a fixpoint.
        if let Ok(inst) = decode(word) {
            let canon = encode(&inst).expect("decoded instruction must re-encode");
            let again = decode(canon).expect("canonical form must decode");
            prop_assert_eq!(again, inst);
            let fix = encode(&again).unwrap();
            prop_assert_eq!(fix, canon);
        }
    }

    #[test]
    fn disasm_never_panics(word in any::<u32>()) {
        let _ = disasm_word(word);
    }

    #[test]
    fn disasm_reassembles_byte_identical(inst in arb_inst()) {
        // Full tooling loop: every encodable instruction's disassembly
        // must be accepted by the assembler and re-encode to the
        // identical word. Pc-relative operands (branches, jal, auipc)
        // are printed as bare offsets, which `assemble` resolves against
        // base 0 — the same frame the disassembler prints in.
        let word = encode(&inst).expect("generated instruction must encode");
        let text = format_inst(&inst);
        let img = xbgas_sim::asm::assemble(0, &text)
            .unwrap_or_else(|e| panic!("assembler rejected {text:?} (from {inst:?}): {e}"));
        prop_assert_eq!(
            &img.words,
            &vec![word],
            "{:?} → {:?} reassembled differently",
            inst,
            text
        );
    }
}
