//! Instruction definitions for RV64IM plus the xBGAS extension.
//!
//! The base ISA is the standard RV64I user-level instruction set with the M
//! (integer multiply/divide) extension — the configuration the paper's Spike
//! environment executes. The xBGAS instructions follow the three categories
//! of paper §3.2:
//!
//! * **Base integer load/store** (`eld`, `esw`, …): same two-operand shape as
//!   standard loads/stores, implicitly pairing `rs1` with extended register
//!   `e[rs1]` to form the 128-bit effective address.
//! * **Raw integer load/store** (`erld`, `ersd`, …): the extended register is
//!   named explicitly; no immediate offset (encoding space, per the paper).
//! * **Address management** (`eaddi`, `eaddie`, `eaddix`): move/adjust
//!   extended-register contents without touching memory.

use crate::reg::{EReg, XReg};
use std::fmt;

/// Memory access widths for load instructions (sign- and zero-extending).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoadWidth {
    /// `lb` — 8-bit, sign-extended.
    B,
    /// `lh` — 16-bit, sign-extended.
    H,
    /// `lw` — 32-bit, sign-extended.
    W,
    /// `ld` — 64-bit.
    D,
    /// `lbu` — 8-bit, zero-extended.
    Bu,
    /// `lhu` — 16-bit, zero-extended.
    Hu,
    /// `lwu` — 32-bit, zero-extended.
    Wu,
}

impl LoadWidth {
    /// Number of bytes accessed.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W | LoadWidth::Wu => 4,
            LoadWidth::D => 8,
        }
    }

    /// Whether the loaded value is sign-extended to 64 bits.
    #[inline]
    pub const fn signed(self) -> bool {
        matches!(
            self,
            LoadWidth::B | LoadWidth::H | LoadWidth::W | LoadWidth::D
        )
    }

    /// The standard RISC-V `funct3` encoding for this width.
    #[inline]
    pub const fn funct3(self) -> u32 {
        match self {
            LoadWidth::B => 0b000,
            LoadWidth::H => 0b001,
            LoadWidth::W => 0b010,
            LoadWidth::D => 0b011,
            LoadWidth::Bu => 0b100,
            LoadWidth::Hu => 0b101,
            LoadWidth::Wu => 0b110,
        }
    }

    /// Inverse of [`LoadWidth::funct3`].
    #[inline]
    pub const fn from_funct3(f3: u32) -> Option<Self> {
        match f3 {
            0b000 => Some(LoadWidth::B),
            0b001 => Some(LoadWidth::H),
            0b010 => Some(LoadWidth::W),
            0b011 => Some(LoadWidth::D),
            0b100 => Some(LoadWidth::Bu),
            0b101 => Some(LoadWidth::Hu),
            0b110 => Some(LoadWidth::Wu),
            _ => None,
        }
    }

    /// Suffix used in mnemonics (`b`, `hu`, `d`, …).
    pub const fn suffix(self) -> &'static str {
        match self {
            LoadWidth::B => "b",
            LoadWidth::H => "h",
            LoadWidth::W => "w",
            LoadWidth::D => "d",
            LoadWidth::Bu => "bu",
            LoadWidth::Hu => "hu",
            LoadWidth::Wu => "wu",
        }
    }

    /// All load widths, for exhaustive tests.
    pub const ALL: [LoadWidth; 7] = [
        LoadWidth::B,
        LoadWidth::H,
        LoadWidth::W,
        LoadWidth::D,
        LoadWidth::Bu,
        LoadWidth::Hu,
        LoadWidth::Wu,
    ];
}

/// Memory access widths for store instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreWidth {
    /// `sb` — 8-bit.
    B,
    /// `sh` — 16-bit.
    H,
    /// `sw` — 32-bit.
    W,
    /// `sd` — 64-bit.
    D,
}

impl StoreWidth {
    /// Number of bytes accessed.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
            StoreWidth::D => 8,
        }
    }

    /// The standard RISC-V `funct3` encoding for this width.
    #[inline]
    pub const fn funct3(self) -> u32 {
        match self {
            StoreWidth::B => 0b000,
            StoreWidth::H => 0b001,
            StoreWidth::W => 0b010,
            StoreWidth::D => 0b011,
        }
    }

    /// Inverse of [`StoreWidth::funct3`].
    #[inline]
    pub const fn from_funct3(f3: u32) -> Option<Self> {
        match f3 {
            0b000 => Some(StoreWidth::B),
            0b001 => Some(StoreWidth::H),
            0b010 => Some(StoreWidth::W),
            0b011 => Some(StoreWidth::D),
            _ => None,
        }
    }

    /// Suffix used in mnemonics.
    pub const fn suffix(self) -> &'static str {
        match self {
            StoreWidth::B => "b",
            StoreWidth::H => "h",
            StoreWidth::W => "w",
            StoreWidth::D => "d",
        }
    }

    /// All store widths, for exhaustive tests.
    pub const ALL: [StoreWidth; 4] = [StoreWidth::B, StoreWidth::H, StoreWidth::W, StoreWidth::D];
}

/// Register-register ALU operations (RV64I OP/OP-32 + RV64M).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl AluOp {
    /// Mnemonic in assembly syntax.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Divuw => "divuw",
            AluOp::Remw => "remw",
            AluOp::Remuw => "remuw",
        }
    }

    /// All register-register operations, for exhaustive tests.
    pub const ALL: [AluOp; 28] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Sllw,
        AluOp::Srlw,
        AluOp::Sraw,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Mulhsu,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::Mulw,
        AluOp::Divw,
        AluOp::Divuw,
        AluOp::Remw,
        AluOp::Remuw,
    ];
}

/// Register-immediate ALU operations (RV64I OP-IMM/OP-IMM-32).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// Mnemonic in assembly syntax.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }

    /// Whether this is a shift (immediate is a shamt, not a 12-bit signed).
    pub const fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }

    /// Whether this is a 32-bit (`*w`) operation; its shamt is 5 bits.
    pub const fn is_word(self) -> bool {
        matches!(
            self,
            AluImmOp::Addiw | AluImmOp::Slliw | AluImmOp::Srliw | AluImmOp::Sraiw
        )
    }

    /// All register-immediate operations, for exhaustive tests.
    pub const ALL: [AluImmOp; 13] = [
        AluImmOp::Addi,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
        AluImmOp::Xori,
        AluImmOp::Ori,
        AluImmOp::Andi,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
        AluImmOp::Addiw,
        AluImmOp::Slliw,
        AluImmOp::Srliw,
        AluImmOp::Sraiw,
    ];
}

/// Branch comparison conditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// Mnemonic in assembly syntax (`beq`, `bltu`, …).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// The standard RISC-V `funct3` encoding.
    #[inline]
    pub const fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }

    /// Inverse of [`BranchCond::funct3`].
    #[inline]
    pub const fn from_funct3(f3: u32) -> Option<Self> {
        match f3 {
            0b000 => Some(BranchCond::Eq),
            0b001 => Some(BranchCond::Ne),
            0b100 => Some(BranchCond::Lt),
            0b101 => Some(BranchCond::Ge),
            0b110 => Some(BranchCond::Ltu),
            0b111 => Some(BranchCond::Geu),
            _ => None,
        }
    }

    /// All branch conditions, for exhaustive tests.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];
}

/// A decoded RV64IM + xBGAS instruction.
///
/// Immediates are stored in *semantic* form: the value the instruction adds
/// to a register or program counter (already sign-extended, already scaled).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `lui rd, imm20` — load upper immediate (`rd = imm20 << 12`).
    Lui {
        /// Destination register.
        rd: XReg,
        /// 20-bit immediate, stored unshifted in the range `-2^19 .. 2^19`.
        imm20: i32,
    },
    /// `auipc rd, imm20` — add upper immediate to `pc`.
    Auipc {
        /// Destination register.
        rd: XReg,
        /// 20-bit immediate, stored unshifted.
        imm20: i32,
    },
    /// `jal rd, offset` — jump and link.
    Jal {
        /// Link register (commonly `ra` or `zero`).
        rd: XReg,
        /// Signed, even byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, imm(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// 12-bit signed offset.
        imm: i32,
    },
    /// Conditional branch (`beq`, `bne`, `blt`, `bge`, `bltu`, `bgeu`).
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First comparison operand.
        rs1: XReg,
        /// Second comparison operand.
        rs2: XReg,
        /// Signed, even byte offset from this instruction.
        offset: i32,
    },
    /// Local load (`lb` … `ld`, `lbu` … `lwu`).
    Load {
        /// Access width and extension.
        width: LoadWidth,
        /// Destination register.
        rd: XReg,
        /// Base address register.
        rs1: XReg,
        /// 12-bit signed offset.
        imm: i32,
    },
    /// Local store (`sb` … `sd`).
    Store {
        /// Access width.
        width: StoreWidth,
        /// Base address register.
        rs1: XReg,
        /// Source data register.
        rs2: XReg,
        /// 12-bit signed offset.
        imm: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        /// The operation.
        op: AluImmOp,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// 12-bit signed immediate, or shamt for shifts.
        imm: i32,
    },
    /// Register-register ALU operation (including RV64M).
    Op {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: XReg,
        /// First source register.
        rs1: XReg,
        /// Second source register.
        rs2: XReg,
    },
    /// `fence` — memory ordering (a no-op in our in-order model, but costed).
    Fence,
    /// `ecall` — environment call; used by kernels to signal the runtime.
    Ecall,
    /// Zicsr access (`csrrw`/`csrrs`/`csrrc`); the simulator exposes the
    /// user counters `cycle`, `time` and `instret`, which the paper's
    /// benchmarks read for their detailed timing.
    Csr {
        /// The access kind.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: XReg,
        /// Source register (bits to write/set/clear).
        rs1: XReg,
        /// 12-bit CSR address.
        csr: u16,
    },
    /// `ebreak` — breakpoint; halts the hart in our simulator.
    Ebreak,

    // ----- xBGAS: Base Integer Load/Store (implicit e-register) -----
    /// `el<w> rd, imm(rs1)` — extended load; the effective 128-bit address is
    /// `(e[rs1] : x[rs1] + imm)` (paper §3.2, Base Integer Load/Store).
    ELoad {
        /// Access width and extension.
        width: LoadWidth,
        /// Destination register.
        rd: XReg,
        /// Base address register; its paired e-register supplies the object ID.
        rs1: XReg,
        /// 12-bit signed offset.
        imm: i32,
    },
    /// `es<w> rs2, imm(rs1)` — extended store to `(e[rs1] : x[rs1] + imm)`.
    EStore {
        /// Access width.
        width: StoreWidth,
        /// Base address register; its paired e-register supplies the object ID.
        rs1: XReg,
        /// Source data register.
        rs2: XReg,
        /// 12-bit signed offset.
        imm: i32,
    },

    // ----- xBGAS: Raw Integer Load/Store (explicit e-register, no imm) -----
    /// `erl<w> rd, rs1, ext2` — raw extended load from `(e[ext2] : x[rs1])`.
    ERLoad {
        /// Access width and extension.
        width: LoadWidth,
        /// Destination register.
        rd: XReg,
        /// Base address register.
        rs1: XReg,
        /// Explicit extended register holding the object ID.
        ext2: EReg,
    },
    /// `ers<w> rs2, rs1, ext3` — raw extended store to `(e[ext3] : x[rs1])`.
    ERStore {
        /// Access width.
        width: StoreWidth,
        /// Base address register.
        rs1: XReg,
        /// Source data register.
        rs2: XReg,
        /// Explicit extended register holding the object ID.
        ext3: EReg,
    },
    /// `erse ext1, rs1, ext2` — store the contents of extended register
    /// `ext1` (64 bits) to `(e[ext2] : x[rs1])`.
    ERse {
        /// Extended register whose contents are stored.
        ext1: EReg,
        /// Base address register.
        rs1: XReg,
        /// Extended register holding the target object ID.
        ext2: EReg,
    },
    /// `erle ext1, rs1, ext2` — load 64 bits from `(e[ext2] : x[rs1])`
    /// into extended register `ext1` (the mirror of [`Inst::ERse`]; lets
    /// object IDs themselves live in remote memory, e.g. distributed
    /// directory structures).
    ERle {
        /// Destination extended register.
        ext1: EReg,
        /// Base address register.
        rs1: XReg,
        /// Extended register holding the source object ID.
        ext2: EReg,
    },

    // ----- xBGAS: Address Management -----
    /// `eaddi rd, ext1, imm` — `x[rd] = e[ext1] + imm` (extended → base).
    Eaddi {
        /// Destination base register.
        rd: XReg,
        /// Source extended register.
        ext1: EReg,
        /// 12-bit signed immediate.
        imm: i32,
    },
    /// `eaddie ext, rs1, imm` — `e[ext] = x[rs1] + imm` (base → extended).
    Eaddie {
        /// Destination extended register.
        ext: EReg,
        /// Source base register.
        rs1: XReg,
        /// 12-bit signed immediate.
        imm: i32,
    },
    /// `eaddix ext1, ext2, imm` — `e[ext1] = e[ext2] + imm` (extended → extended).
    Eaddix {
        /// Destination extended register.
        ext1: EReg,
        /// Source extended register.
        ext2: EReg,
        /// 12-bit signed immediate.
        imm: i32,
    },
}

/// Zicsr operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CsrOp {
    /// `csrrw` — atomic read/write.
    Rw,
    /// `csrrs` — atomic read and set bits.
    Rs,
    /// `csrrc` — atomic read and clear bits.
    Rc,
}

impl CsrOp {
    /// Mnemonic in assembly syntax.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CsrOp::Rw => "csrrw",
            CsrOp::Rs => "csrrs",
            CsrOp::Rc => "csrrc",
        }
    }

    /// The standard `funct3` encoding.
    #[inline]
    pub const fn funct3(self) -> u32 {
        match self {
            CsrOp::Rw => 0b001,
            CsrOp::Rs => 0b010,
            CsrOp::Rc => 0b011,
        }
    }

    /// Inverse of [`CsrOp::funct3`].
    #[inline]
    pub const fn from_funct3(f3: u32) -> Option<Self> {
        match f3 {
            0b001 => Some(CsrOp::Rw),
            0b010 => Some(CsrOp::Rs),
            0b011 => Some(CsrOp::Rc),
            _ => None,
        }
    }

    /// All CSR operations, for exhaustive tests.
    pub const ALL: [CsrOp; 3] = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc];
}

/// Well-known user-level counter CSR addresses.
pub mod csr {
    /// Cycle counter.
    pub const CYCLE: u16 = 0xC00;
    /// Wall-clock time counter (equals cycles at our fixed frequency).
    pub const TIME: u16 = 0xC01;
    /// Retired-instruction counter.
    pub const INSTRET: u16 = 0xC02;
}

/// The three xBGAS instruction categories of paper §3.2, plus `Base` for
/// standard RV64IM instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstCategory {
    /// Standard RV64IM instruction.
    Base,
    /// xBGAS base integer load/store (implicit e-register).
    XbgasBaseLoadStore,
    /// xBGAS raw integer load/store (explicit e-register).
    XbgasRawLoadStore,
    /// xBGAS address management.
    XbgasAddressManagement,
}

impl Inst {
    /// Which ISA category the instruction belongs to.
    pub const fn category(&self) -> InstCategory {
        match self {
            Inst::ELoad { .. } | Inst::EStore { .. } => InstCategory::XbgasBaseLoadStore,
            Inst::ERLoad { .. } | Inst::ERStore { .. } | Inst::ERse { .. } | Inst::ERle { .. } => {
                InstCategory::XbgasRawLoadStore
            }
            Inst::Eaddi { .. } | Inst::Eaddie { .. } | Inst::Eaddix { .. } => {
                InstCategory::XbgasAddressManagement
            }
            _ => InstCategory::Base,
        }
    }

    /// `true` if this instruction is part of the xBGAS extension.
    pub const fn is_xbgas(&self) -> bool {
        !matches!(self.category(), InstCategory::Base)
    }

    /// `true` if this instruction may access memory (local or remote).
    pub const fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::ELoad { .. }
                | Inst::EStore { .. }
                | Inst::ERLoad { .. }
                | Inst::ERStore { .. }
                | Inst::ERse { .. }
                | Inst::ERle { .. }
        )
    }

    /// `true` if this instruction can redirect control flow.
    pub const fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// `true` if this instruction terminates a basic block: control flow
    /// (jump/branch) or an environment transfer (`ecall`/`ebreak`). Block
    /// translators stop straight-line discovery here; everything else can
    /// be pre-decoded and executed back-to-back.
    pub const fn ends_block(&self) -> bool {
        self.is_control() || matches!(self, Inst::Ecall | Inst::Ebreak)
    }

    /// The assembly mnemonic for the instruction, without operands.
    pub fn mnemonic(&self) -> String {
        match self {
            Inst::Lui { .. } => "lui".into(),
            Inst::Auipc { .. } => "auipc".into(),
            Inst::Jal { .. } => "jal".into(),
            Inst::Jalr { .. } => "jalr".into(),
            Inst::Branch { cond, .. } => cond.mnemonic().into(),
            Inst::Load { width, .. } => format!("l{}", width.suffix()),
            Inst::Store { width, .. } => format!("s{}", width.suffix()),
            Inst::OpImm { op, .. } => op.mnemonic().into(),
            Inst::Op { op, .. } => op.mnemonic().into(),
            Inst::Fence => "fence".into(),
            Inst::Ecall => "ecall".into(),
            Inst::Csr { op, .. } => op.mnemonic().into(),
            Inst::Ebreak => "ebreak".into(),
            Inst::ELoad { width, .. } => format!("el{}", width.suffix()),
            Inst::EStore { width, .. } => format!("es{}", width.suffix()),
            Inst::ERLoad { width, .. } => format!("erl{}", width.suffix()),
            Inst::ERStore { width, .. } => format!("ers{}", width.suffix()),
            Inst::ERse { .. } => "erse".into(),
            Inst::ERle { .. } => "erle".into(),
            Inst::Eaddi { .. } => "eaddi".into(),
            Inst::Eaddie { .. } => "eaddie".into(),
            Inst::Eaddix { .. } => "eaddix".into(),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::format_inst(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_bytes() {
        assert_eq!(LoadWidth::D.bytes(), 8);
        assert_eq!(LoadWidth::Bu.bytes(), 1);
        assert!(!LoadWidth::Wu.signed());
        assert!(LoadWidth::W.signed());
        assert_eq!(StoreWidth::H.bytes(), 2);
    }

    #[test]
    fn funct3_roundtrip() {
        for w in LoadWidth::ALL {
            assert_eq!(LoadWidth::from_funct3(w.funct3()), Some(w));
        }
        for w in StoreWidth::ALL {
            assert_eq!(StoreWidth::from_funct3(w.funct3()), Some(w));
        }
        for c in BranchCond::ALL {
            assert_eq!(BranchCond::from_funct3(c.funct3()), Some(c));
        }
        assert_eq!(LoadWidth::from_funct3(0b111), None);
        assert_eq!(StoreWidth::from_funct3(0b100), None);
        assert_eq!(BranchCond::from_funct3(0b010), None);
    }

    #[test]
    fn categories() {
        let eld = Inst::ELoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 0,
        };
        assert_eq!(eld.category(), InstCategory::XbgasBaseLoadStore);
        assert!(eld.is_xbgas());
        assert!(eld.is_memory());

        let erse = Inst::ERse {
            ext1: EReg::new(1),
            rs1: XReg::A0,
            ext2: EReg::new(2),
        };
        assert_eq!(erse.category(), InstCategory::XbgasRawLoadStore);

        let eaddie = Inst::Eaddie {
            ext: EReg::new(3),
            rs1: XReg::A0,
            imm: 5,
        };
        assert_eq!(eaddie.category(), InstCategory::XbgasAddressManagement);
        assert!(!eaddie.is_memory());

        let add = Inst::Op {
            op: AluOp::Add,
            rd: XReg::A0,
            rs1: XReg::A0,
            rs2: XReg::A1,
        };
        assert_eq!(add.category(), InstCategory::Base);
        assert!(!add.is_xbgas());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(
            Inst::ELoad {
                width: LoadWidth::D,
                rd: XReg::A0,
                rs1: XReg::A1,
                imm: 0
            }
            .mnemonic(),
            "eld"
        );
        assert_eq!(
            Inst::ERStore {
                width: StoreWidth::W,
                rs1: XReg::A0,
                rs2: XReg::A1,
                ext3: EReg::new(4)
            }
            .mnemonic(),
            "ersw"
        );
        assert_eq!(AluImmOp::Sraiw.mnemonic(), "sraiw");
        assert!(AluImmOp::Sraiw.is_shift());
        assert!(AluImmOp::Sraiw.is_word());
        assert!(!AluImmOp::Xori.is_shift());
    }
}
