//! Binary encoding of RV64IM + xBGAS instructions.
//!
//! Base RV64IM instructions use the standard RISC-V encodings. The public
//! xBGAS architecture specification's exact opcode assignments are not
//! available offline, so this crate places the extension in the RISC-V
//! *custom* opcode space, keeping the standard format shapes:
//!
//! | group                        | opcode  | format | discriminator        |
//! |------------------------------|---------|--------|----------------------|
//! | base extended loads          | `0x0B`  | I      | funct3 = load width  |
//! | base extended stores         | `0x2B`  | S      | funct3 = store width |
//! | raw extended loads           | `0x5B`  | R      | funct7=0, funct3=width |
//! | raw extended stores          | `0x5B`  | R      | funct7=1, funct3=width |
//! | `erse`                       | `0x5B`  | R      | funct7=2, funct3=3   |
//! | address management           | `0x7B`  | I      | funct3 = 0/1/2       |
//!
//! E-register numbers occupy the same 5-bit fields as x-register numbers.
//! The encoding is self-consistent: `decode(encode(i)) == i` for every
//! representable instruction (verified by property tests).

use crate::inst::*;
use crate::reg::{EReg, XReg};

/// Errors produced when an instruction's operands do not fit its encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A 12-bit signed immediate was out of `-2048..=2047`.
    ImmOutOfRange {
        /// The offending value.
        value: i32,
        /// Number of bits available (including sign).
        bits: u8,
    },
    /// A branch or jump offset was odd (must be 2-byte aligned).
    MisalignedOffset(i32),
    /// A shift amount exceeded the operand width.
    ShamtOutOfRange(i32),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} signed bits")
            }
            EncodeError::MisalignedOffset(v) => {
                write!(f, "control-flow offset {v} is not 2-byte aligned")
            }
            EncodeError::ShamtOutOfRange(v) => write!(f, "shift amount {v} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// xBGAS custom opcodes (see module docs).
pub mod opcodes {
    /// Standard RV64I LOAD opcode.
    pub const LOAD: u32 = 0x03;
    /// Standard RV64I STORE opcode.
    pub const STORE: u32 = 0x23;
    /// Standard OP-IMM opcode.
    pub const OP_IMM: u32 = 0x13;
    /// Standard OP-IMM-32 opcode.
    pub const OP_IMM_32: u32 = 0x1B;
    /// Standard OP opcode.
    pub const OP: u32 = 0x33;
    /// Standard OP-32 opcode.
    pub const OP_32: u32 = 0x3B;
    /// Standard LUI opcode.
    pub const LUI: u32 = 0x37;
    /// Standard AUIPC opcode.
    pub const AUIPC: u32 = 0x17;
    /// Standard JAL opcode.
    pub const JAL: u32 = 0x6F;
    /// Standard JALR opcode.
    pub const JALR: u32 = 0x67;
    /// Standard BRANCH opcode.
    pub const BRANCH: u32 = 0x63;
    /// Standard MISC-MEM opcode (fence).
    pub const MISC_MEM: u32 = 0x0F;
    /// Standard SYSTEM opcode (ecall/ebreak).
    pub const SYSTEM: u32 = 0x73;
    /// xBGAS base extended loads (custom-0).
    pub const XBGAS_ELOAD: u32 = 0x0B;
    /// xBGAS base extended stores (custom-1).
    pub const XBGAS_ESTORE: u32 = 0x2B;
    /// xBGAS raw extended loads/stores and `erse` (custom-2).
    pub const XBGAS_RAW: u32 = 0x5B;
    /// xBGAS address management (custom-3).
    pub const XBGAS_ADDR: u32 = 0x7B;
}

#[inline]
fn check_simm(value: i32, bits: u8) -> Result<u32, EncodeError> {
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { value, bits });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

#[inline]
fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

#[inline]
fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm12: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (imm12 << 20)
}

#[inline]
fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm12: u32) -> u32 {
    let lo = imm12 & 0x1F;
    let hi = (imm12 >> 5) & 0x7F;
    opcode | (lo << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (hi << 25)
}

#[inline]
fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm13: u32) -> u32 {
    // imm13 is the already-masked 13-bit offset; bit 0 is always zero.
    let b11 = (imm13 >> 11) & 1;
    let b4_1 = (imm13 >> 1) & 0xF;
    let b10_5 = (imm13 >> 5) & 0x3F;
    let b12 = (imm13 >> 12) & 1;
    opcode
        | (b11 << 7)
        | (b4_1 << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (b10_5 << 25)
        | (b12 << 31)
}

#[inline]
fn u_type(opcode: u32, rd: u32, imm20: u32) -> u32 {
    opcode | (rd << 7) | (imm20 << 12)
}

#[inline]
fn j_type(opcode: u32, rd: u32, imm21: u32) -> u32 {
    // imm21 is the already-masked 21-bit offset; bit 0 is always zero.
    let b19_12 = (imm21 >> 12) & 0xFF;
    let b11 = (imm21 >> 11) & 1;
    let b10_1 = (imm21 >> 1) & 0x3FF;
    let b20 = (imm21 >> 20) & 1;
    opcode | (rd << 7) | (b19_12 << 12) | (b11 << 20) | (b10_1 << 21) | (b20 << 31)
}

fn alu_op_fields(op: AluOp) -> (u32, u32, u32) {
    // (opcode, funct3, funct7)
    use opcodes::{OP, OP_32};
    match op {
        AluOp::Add => (OP, 0b000, 0x00),
        AluOp::Sub => (OP, 0b000, 0x20),
        AluOp::Sll => (OP, 0b001, 0x00),
        AluOp::Slt => (OP, 0b010, 0x00),
        AluOp::Sltu => (OP, 0b011, 0x00),
        AluOp::Xor => (OP, 0b100, 0x00),
        AluOp::Srl => (OP, 0b101, 0x00),
        AluOp::Sra => (OP, 0b101, 0x20),
        AluOp::Or => (OP, 0b110, 0x00),
        AluOp::And => (OP, 0b111, 0x00),
        AluOp::Mul => (OP, 0b000, 0x01),
        AluOp::Mulh => (OP, 0b001, 0x01),
        AluOp::Mulhsu => (OP, 0b010, 0x01),
        AluOp::Mulhu => (OP, 0b011, 0x01),
        AluOp::Div => (OP, 0b100, 0x01),
        AluOp::Divu => (OP, 0b101, 0x01),
        AluOp::Rem => (OP, 0b110, 0x01),
        AluOp::Remu => (OP, 0b111, 0x01),
        AluOp::Addw => (OP_32, 0b000, 0x00),
        AluOp::Subw => (OP_32, 0b000, 0x20),
        AluOp::Sllw => (OP_32, 0b001, 0x00),
        AluOp::Srlw => (OP_32, 0b101, 0x00),
        AluOp::Sraw => (OP_32, 0b101, 0x20),
        AluOp::Mulw => (OP_32, 0b000, 0x01),
        AluOp::Divw => (OP_32, 0b100, 0x01),
        AluOp::Divuw => (OP_32, 0b101, 0x01),
        AluOp::Remw => (OP_32, 0b110, 0x01),
        AluOp::Remuw => (OP_32, 0b111, 0x01),
    }
}

pub(crate) fn alu_op_from_fields(opcode: u32, funct3: u32, funct7: u32) -> Option<AluOp> {
    AluOp::ALL
        .into_iter()
        .find(|&op| alu_op_fields(op) == (opcode, funct3, funct7))
}

/// Encode one instruction into its 32-bit binary form.
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    use opcodes::*;
    Ok(match *inst {
        Inst::Lui { rd, imm20 } => {
            let imm = check_simm(imm20, 20)?;
            u_type(LUI, rd.num() as u32, imm)
        }
        Inst::Auipc { rd, imm20 } => {
            let imm = check_simm(imm20, 20)?;
            u_type(AUIPC, rd.num() as u32, imm)
        }
        Inst::Jal { rd, offset } => {
            if offset & 1 != 0 {
                return Err(EncodeError::MisalignedOffset(offset));
            }
            let imm = check_simm(offset, 21)?;
            j_type(JAL, rd.num() as u32, imm)
        }
        Inst::Jalr { rd, rs1, imm } => {
            let imm = check_simm(imm, 12)?;
            i_type(JALR, rd.num() as u32, 0b000, rs1.num() as u32, imm)
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            if offset & 1 != 0 {
                return Err(EncodeError::MisalignedOffset(offset));
            }
            let imm = check_simm(offset, 13)?;
            b_type(
                BRANCH,
                cond.funct3(),
                rs1.num() as u32,
                rs2.num() as u32,
                imm,
            )
        }
        Inst::Load {
            width,
            rd,
            rs1,
            imm,
        } => {
            let imm = check_simm(imm, 12)?;
            i_type(LOAD, rd.num() as u32, width.funct3(), rs1.num() as u32, imm)
        }
        Inst::Store {
            width,
            rs1,
            rs2,
            imm,
        } => {
            let imm = check_simm(imm, 12)?;
            s_type(
                STORE,
                width.funct3(),
                rs1.num() as u32,
                rs2.num() as u32,
                imm,
            )
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let (opcode, funct3) = match op {
                AluImmOp::Addi => (OP_IMM, 0b000),
                AluImmOp::Slti => (OP_IMM, 0b010),
                AluImmOp::Sltiu => (OP_IMM, 0b011),
                AluImmOp::Xori => (OP_IMM, 0b100),
                AluImmOp::Ori => (OP_IMM, 0b110),
                AluImmOp::Andi => (OP_IMM, 0b111),
                AluImmOp::Slli => (OP_IMM, 0b001),
                AluImmOp::Srli | AluImmOp::Srai => (OP_IMM, 0b101),
                AluImmOp::Addiw => (OP_IMM_32, 0b000),
                AluImmOp::Slliw => (OP_IMM_32, 0b001),
                AluImmOp::Srliw | AluImmOp::Sraiw => (OP_IMM_32, 0b101),
            };
            if op.is_shift() {
                let max_shamt = if op.is_word() { 31 } else { 63 };
                if imm < 0 || imm > max_shamt {
                    return Err(EncodeError::ShamtOutOfRange(imm));
                }
                // RV64 shifts use a 6-bit shamt with funct6 at the top;
                // *W shifts use 5 bits with funct7.
                let arith = matches!(op, AluImmOp::Srai | AluImmOp::Sraiw);
                let hi: u32 = if arith { 0x20 } else { 0x00 };
                let imm12 = (hi << 5) | (imm as u32);
                i_type(opcode, rd.num() as u32, funct3, rs1.num() as u32, imm12)
            } else {
                let imm = check_simm(imm, 12)?;
                i_type(opcode, rd.num() as u32, funct3, rs1.num() as u32, imm)
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (opcode, funct3, funct7) = alu_op_fields(op);
            r_type(
                opcode,
                rd.num() as u32,
                funct3,
                rs1.num() as u32,
                rs2.num() as u32,
                funct7,
            )
        }
        Inst::Fence => i_type(MISC_MEM, 0, 0b000, 0, 0),
        Inst::Ecall => i_type(SYSTEM, 0, 0b000, 0, 0),
        Inst::Ebreak => i_type(SYSTEM, 0, 0b000, 0, 1),
        Inst::Csr { op, rd, rs1, csr } => i_type(
            SYSTEM,
            rd.num() as u32,
            op.funct3(),
            rs1.num() as u32,
            (csr & 0xFFF) as u32,
        ),

        Inst::ELoad {
            width,
            rd,
            rs1,
            imm,
        } => {
            let imm = check_simm(imm, 12)?;
            i_type(
                XBGAS_ELOAD,
                rd.num() as u32,
                width.funct3(),
                rs1.num() as u32,
                imm,
            )
        }
        Inst::EStore {
            width,
            rs1,
            rs2,
            imm,
        } => {
            let imm = check_simm(imm, 12)?;
            s_type(
                XBGAS_ESTORE,
                width.funct3(),
                rs1.num() as u32,
                rs2.num() as u32,
                imm,
            )
        }
        Inst::ERLoad {
            width,
            rd,
            rs1,
            ext2,
        } => r_type(
            XBGAS_RAW,
            rd.num() as u32,
            width.funct3(),
            rs1.num() as u32,
            ext2.num() as u32,
            0x00,
        ),
        Inst::ERStore {
            width,
            rs1,
            rs2,
            ext3,
        } => r_type(
            XBGAS_RAW,
            ext3.num() as u32,
            width.funct3(),
            rs1.num() as u32,
            rs2.num() as u32,
            0x01,
        ),
        Inst::ERse { ext1, rs1, ext2 } => r_type(
            XBGAS_RAW,
            ext1.num() as u32,
            0b011,
            rs1.num() as u32,
            ext2.num() as u32,
            0x02,
        ),
        Inst::ERle { ext1, rs1, ext2 } => r_type(
            XBGAS_RAW,
            ext1.num() as u32,
            0b011,
            rs1.num() as u32,
            ext2.num() as u32,
            0x03,
        ),
        Inst::Eaddi { rd, ext1, imm } => {
            let imm = check_simm(imm, 12)?;
            i_type(XBGAS_ADDR, rd.num() as u32, 0b000, ext1.num() as u32, imm)
        }
        Inst::Eaddie { ext, rs1, imm } => {
            let imm = check_simm(imm, 12)?;
            i_type(XBGAS_ADDR, ext.num() as u32, 0b001, rs1.num() as u32, imm)
        }
        Inst::Eaddix { ext1, ext2, imm } => {
            let imm = check_simm(imm, 12)?;
            i_type(XBGAS_ADDR, ext1.num() as u32, 0b010, ext2.num() as u32, imm)
        }
    })
}

/// Convenience constructors mirroring common assembler pseudo-instructions.
pub mod pseudo {
    use super::*;

    /// `nop` — encoded as `addi x0, x0, 0`.
    pub fn nop() -> Inst {
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            imm: 0,
        }
    }

    /// `mv rd, rs` — encoded as `addi rd, rs, 0`.
    pub fn mv(rd: XReg, rs: XReg) -> Inst {
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rs,
            imm: 0,
        }
    }

    /// `li rd, imm` for immediates representable in 12 bits.
    pub fn li(rd: XReg, imm: i32) -> Inst {
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: XReg::ZERO,
            imm,
        }
    }

    /// `ret` — encoded as `jalr x0, 0(ra)`.
    pub fn ret() -> Inst {
        Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::RA,
            imm: 0,
        }
    }

    /// `rdcycle rd` — read the cycle counter (`csrrs rd, cycle, x0`).
    pub fn rdcycle(rd: XReg) -> Inst {
        Inst::Csr {
            op: crate::inst::CsrOp::Rs,
            rd,
            rs1: XReg::ZERO,
            csr: crate::inst::csr::CYCLE,
        }
    }

    /// `rdinstret rd` — read the retired-instruction counter.
    pub fn rdinstret(rd: XReg) -> Inst {
        Inst::Csr {
            op: crate::inst::CsrOp::Rs,
            rd,
            rs1: XReg::ZERO,
            csr: crate::inst::csr::INSTRET,
        }
    }

    /// `eset ext, id` — set an extended register to a small object ID,
    /// encoded as `eaddie ext, x0, id`. This is the idiom the xBGAS runtime
    /// uses to target a PE before a remote access.
    pub fn eset(ext: EReg, id: i32) -> Inst {
        Inst::Eaddie {
            ext,
            rs1: XReg::ZERO,
            imm: id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_standard_encodings() {
        // addi a0, a1, 7  => imm=7, rs1=11, f3=0, rd=10, opcode=0x13
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 7,
        };
        assert_eq!(
            encode(&i).unwrap(),
            (7 << 20) | (11 << 15) | (10 << 7) | 0x13
        );

        // add a0, a1, a2
        let i = Inst::Op {
            op: AluOp::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::new(12),
        };
        assert_eq!(
            encode(&i).unwrap(),
            (12 << 20) | (11 << 15) | (10 << 7) | 0x33
        );

        // ecall / ebreak
        assert_eq!(encode(&Inst::Ecall).unwrap(), 0x0000_0073);
        assert_eq!(encode(&Inst::Ebreak).unwrap(), 0x0010_0073);
    }

    #[test]
    fn imm_range_enforced() {
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 2048,
        };
        assert!(matches!(
            encode(&i),
            Err(EncodeError::ImmOutOfRange {
                value: 2048,
                bits: 12
            })
        ));
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: -2048,
        };
        assert!(encode(&i).is_ok());
    }

    #[test]
    fn branch_alignment_enforced() {
        let i = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: XReg::A0,
            rs2: XReg::A1,
            offset: 3,
        };
        assert!(matches!(encode(&i), Err(EncodeError::MisalignedOffset(3))));
    }

    #[test]
    fn shamt_range_enforced() {
        let ok = Inst::OpImm {
            op: AluImmOp::Slli,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 63,
        };
        assert!(encode(&ok).is_ok());
        let bad = Inst::OpImm {
            op: AluImmOp::Slli,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 64,
        };
        assert!(matches!(
            encode(&bad),
            Err(EncodeError::ShamtOutOfRange(64))
        ));
        let bad_w = Inst::OpImm {
            op: AluImmOp::Slliw,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 32,
        };
        assert!(matches!(
            encode(&bad_w),
            Err(EncodeError::ShamtOutOfRange(32))
        ));
    }

    #[test]
    fn xbgas_opcodes_used() {
        let eld = Inst::ELoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 16,
        };
        assert_eq!(encode(&eld).unwrap() & 0x7F, opcodes::XBGAS_ELOAD);

        let esd = Inst::EStore {
            width: StoreWidth::D,
            rs1: XReg::A0,
            rs2: XReg::A1,
            imm: -8,
        };
        assert_eq!(encode(&esd).unwrap() & 0x7F, opcodes::XBGAS_ESTORE);

        let erld = Inst::ERLoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            ext2: EReg::new(5),
        };
        assert_eq!(encode(&erld).unwrap() & 0x7F, opcodes::XBGAS_RAW);

        let eaddie = Inst::Eaddie {
            ext: EReg::new(9),
            rs1: XReg::A0,
            imm: 3,
        };
        assert_eq!(encode(&eaddie).unwrap() & 0x7F, opcodes::XBGAS_ADDR);
    }

    #[test]
    fn pseudo_shapes() {
        assert_eq!(encode(&pseudo::nop()).unwrap(), 0x0000_0013);
        let eset = pseudo::eset(EReg::new(10), 3);
        match eset {
            Inst::Eaddie { ext, rs1, imm } => {
                assert_eq!(ext.num(), 10);
                assert_eq!(rs1, XReg::ZERO);
                assert_eq!(imm, 3);
            }
            _ => panic!("eset should be eaddie"),
        }
    }
}
