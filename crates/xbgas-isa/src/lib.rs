//! # xbgas-isa — RV64IM + xBGAS instruction set model
//!
//! This crate defines the instruction set executed by the reproduction of
//! *Collective Communication for the RISC-V xBGAS ISA Extension* (ICPP 2019):
//! the standard RV64I base integer ISA with the M extension, plus the xBGAS
//! extension's three instruction groups (paper §3.2):
//!
//! 1. **Base integer load/store** — `eld`/`elw`/…/`esb`, which pair `rs1`
//!    with its naturally-corresponding extended register to form a 128-bit
//!    extended address,
//! 2. **Raw integer load/store** — `erld`/…/`erse`, which name the extended
//!    register explicitly and carry no immediate, and
//! 3. **Address management** — `eaddi`/`eaddie`/`eaddix`, which move values
//!    between the base (`x`) and extended (`e`) register files.
//!
//! The crate provides register types ([`XReg`], [`EReg`]), the [`Inst`]
//! enum, a binary [`encode()`]r and [`decode()`]r, and a disassembler. The
//! companion crate `xbgas-sim` executes these instructions on a multi-core
//! timing simulator.
//!
//! ## Example
//!
//! ```
//! use xbgas_isa::{Inst, LoadWidth, XReg, EReg, encode, decode};
//!
//! // eld a0, 8(a1)  — remote load through e11 (the register paired with a1)
//! let inst = Inst::ELoad { width: LoadWidth::D, rd: XReg::A0, rs1: XReg::A1, imm: 8 };
//! let word = encode(&inst).unwrap();
//! assert_eq!(decode(word).unwrap(), inst);
//! assert_eq!(inst.to_string(), "eld a0, 8(a1)");
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod reg;

pub use decode::{decode, decode_all, DecodeError};
pub use disasm::{disasm_word, format_inst};
pub use encode::{encode, pseudo, EncodeError};
pub use inst::{AluImmOp, AluOp, BranchCond, Inst, InstCategory, LoadWidth, StoreWidth};
pub use reg::{EReg, XReg};
