//! Textual disassembly of RV64IM + xBGAS instructions.
//!
//! The output uses GNU-style assembly syntax; xBGAS instructions follow the
//! operand orders shown in paper §3.2 (`eld rd, imm(rs1)`,
//! `erld rd, rs1, ext2`, …). Output from this module parses back through
//! [`crate::Inst`]-producing assemblers such as `xbgas_sim::asm`.

use crate::inst::Inst;

/// Render one instruction as assembly text.
pub fn format_inst(inst: &Inst) -> String {
    match *inst {
        Inst::Lui { rd, imm20 } => format!("lui {rd}, {imm20}"),
        Inst::Auipc { rd, imm20 } => format!("auipc {rd}, {imm20}"),
        Inst::Jal { rd, offset } => format!("jal {rd}, {offset}"),
        Inst::Jalr { rd, rs1, imm } => format!("jalr {rd}, {imm}({rs1})"),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => format!("{} {rs1}, {rs2}, {offset}", cond.mnemonic()),
        Inst::Load {
            width,
            rd,
            rs1,
            imm,
        } => format!("l{} {rd}, {imm}({rs1})", width.suffix()),
        Inst::Store {
            width,
            rs1,
            rs2,
            imm,
        } => format!("s{} {rs2}, {imm}({rs1})", width.suffix()),
        Inst::OpImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", op.mnemonic())
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Inst::Fence => "fence".into(),
        Inst::Ecall => "ecall".into(),
        Inst::Ebreak => "ebreak".into(),
        Inst::Csr { op, rd, rs1, csr } => {
            format!("{} {rd}, {csr:#x}, {rs1}", op.mnemonic())
        }
        Inst::ELoad {
            width,
            rd,
            rs1,
            imm,
        } => format!("el{} {rd}, {imm}({rs1})", width.suffix()),
        Inst::EStore {
            width,
            rs1,
            rs2,
            imm,
        } => format!("es{} {rs2}, {imm}({rs1})", width.suffix()),
        Inst::ERLoad {
            width,
            rd,
            rs1,
            ext2,
        } => format!("erl{} {rd}, {rs1}, {ext2}", width.suffix()),
        Inst::ERStore {
            width,
            rs1,
            rs2,
            ext3,
        } => format!("ers{} {rs2}, {rs1}, {ext3}", width.suffix()),
        Inst::ERse { ext1, rs1, ext2 } => format!("erse {ext1}, {rs1}, {ext2}"),
        Inst::ERle { ext1, rs1, ext2 } => format!("erle {ext1}, {rs1}, {ext2}"),
        Inst::Eaddi { rd, ext1, imm } => format!("eaddi {rd}, {ext1}, {imm}"),
        Inst::Eaddie { ext, rs1, imm } => format!("eaddie {ext}, {rs1}, {imm}"),
        Inst::Eaddix { ext1, ext2, imm } => format!("eaddix {ext1}, {ext2}, {imm}"),
    }
}

/// Disassemble a 32-bit word, falling back to a `.word` directive for
/// undecodable values.
pub fn disasm_word(word: u32) -> String {
    match crate::decode::decode(word) {
        Ok(inst) => format_inst(&inst),
        Err(_) => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::*;
    use crate::reg::{EReg, XReg};

    #[test]
    fn paper_operand_orders() {
        // Paper §3.2: "eld rd, imm(rs1)"
        let eld = Inst::ELoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 16,
        };
        assert_eq!(format_inst(&eld), "eld a0, 16(a1)");

        // Paper §3.2: "erld rd, rs1, ext2"
        let erld = Inst::ERLoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            ext2: EReg::new(7),
        };
        assert_eq!(format_inst(&erld), "erld a0, a1, e7");
    }

    #[test]
    fn word_fallback() {
        assert_eq!(disasm_word(0), ".word 0x00000000");
        let add = crate::encode::encode(&Inst::Op {
            op: AluOp::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::new(12),
        })
        .unwrap();
        assert_eq!(disasm_word(add), "add a0, a1, a2");
    }

    #[test]
    fn display_matches_disasm() {
        let i = Inst::Eaddie {
            ext: EReg::new(4),
            rs1: XReg::SP,
            imm: -32,
        };
        assert_eq!(i.to_string(), "eaddie e4, sp, -32");
    }
}
