//! Binary decoding of RV64IM + xBGAS instructions.

use crate::encode::{alu_op_from_fields, opcodes};
use crate::inst::*;
use crate::reg::{EReg, XReg};

/// Errors produced when a 32-bit word is not a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Unrecognised major opcode.
    UnknownOpcode(u32),
    /// Recognised opcode but invalid funct3/funct7 combination.
    InvalidFunct {
        /// The major opcode.
        opcode: u32,
        /// funct3 field.
        funct3: u32,
        /// funct7 field.
        funct7: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::InvalidFunct {
                opcode,
                funct3,
                funct7,
            } => write!(
                f,
                "invalid funct fields (opcode={opcode:#04x}, funct3={funct3:#05b}, funct7={funct7:#09b})"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(word: u32) -> XReg {
    XReg::new(((word >> 7) & 0x1F) as u8)
}

#[inline]
fn rs1(word: u32) -> XReg {
    XReg::new(((word >> 15) & 0x1F) as u8)
}

#[inline]
fn rs2(word: u32) -> XReg {
    XReg::new(((word >> 20) & 0x1F) as u8)
}

#[inline]
fn erd(word: u32) -> EReg {
    EReg::new(((word >> 7) & 0x1F) as u8)
}

#[inline]
fn ers1(word: u32) -> EReg {
    EReg::new(((word >> 15) & 0x1F) as u8)
}

#[inline]
fn ers2(word: u32) -> EReg {
    EReg::new(((word >> 20) & 0x1F) as u8)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    (word >> 25) & 0x7F
}

#[inline]
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

#[inline]
fn imm_s(word: u32) -> i32 {
    let lo = (word >> 7) & 0x1F;
    let hi = (word as i32) >> 25; // arithmetic shift sign-extends
    (hi << 5) | lo as i32
}

#[inline]
fn imm_b(word: u32) -> i32 {
    let b11 = (word >> 7) & 1;
    let b4_1 = (word >> 8) & 0xF;
    let b10_5 = (word >> 25) & 0x3F;
    let b12 = (word >> 31) & 1;
    let raw = (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1);
    // Sign-extend from 13 bits.
    ((raw << 19) as i32) >> 19
}

#[inline]
fn imm_u(word: u32) -> i32 {
    // Stored unshifted, sign-extended from 20 bits.
    ((word & 0xFFFF_F000) as i32) >> 12
}

#[inline]
fn imm_j(word: u32) -> i32 {
    let b19_12 = (word >> 12) & 0xFF;
    let b11 = (word >> 20) & 1;
    let b10_1 = (word >> 21) & 0x3FF;
    let b20 = (word >> 31) & 1;
    let raw = (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1);
    // Sign-extend from 21 bits.
    ((raw << 11) as i32) >> 11
}

/// Decode one 32-bit word into an instruction.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    use opcodes::*;
    let opcode = word & 0x7F;
    let f3 = funct3(word);
    let f7 = funct7(word);
    let invalid = DecodeError::InvalidFunct {
        opcode,
        funct3: f3,
        funct7: f7,
    };

    Ok(match opcode {
        LUI => Inst::Lui {
            rd: rd(word),
            imm20: imm_u(word),
        },
        AUIPC => Inst::Auipc {
            rd: rd(word),
            imm20: imm_u(word),
        },
        JAL => Inst::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        JALR => {
            if f3 != 0 {
                return Err(invalid);
            }
            Inst::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            }
        }
        BRANCH => {
            let cond = BranchCond::from_funct3(f3).ok_or(invalid)?;
            Inst::Branch {
                cond,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        LOAD => {
            let width = LoadWidth::from_funct3(f3).ok_or(invalid)?;
            Inst::Load {
                width,
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            }
        }
        STORE => {
            let width = StoreWidth::from_funct3(f3).ok_or(invalid)?;
            Inst::Store {
                width,
                rs1: rs1(word),
                rs2: rs2(word),
                imm: imm_s(word),
            }
        }
        OP_IMM => {
            let op = match f3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => AluImmOp::Slli,
                0b101 => {
                    if (f7 >> 1) == 0x10 {
                        AluImmOp::Srai
                    } else if (f7 >> 1) == 0x00 {
                        AluImmOp::Srli
                    } else {
                        return Err(invalid);
                    }
                }
                _ => return Err(invalid),
            };
            let imm = if op.is_shift() {
                imm_i(word) & 0x3F
            } else {
                imm_i(word)
            };
            if op == AluImmOp::Slli && (f7 >> 1) != 0 {
                return Err(invalid);
            }
            Inst::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        OP_IMM_32 => {
            let op = match f3 {
                0b000 => AluImmOp::Addiw,
                0b001 => AluImmOp::Slliw,
                0b101 => {
                    if f7 == 0x20 {
                        AluImmOp::Sraiw
                    } else if f7 == 0x00 {
                        AluImmOp::Srliw
                    } else {
                        return Err(invalid);
                    }
                }
                _ => return Err(invalid),
            };
            let imm = if op.is_shift() {
                imm_i(word) & 0x1F
            } else {
                imm_i(word)
            };
            if op == AluImmOp::Slliw && f7 != 0 {
                return Err(invalid);
            }
            Inst::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        OP | OP_32 => {
            let op = alu_op_from_fields(opcode, f3, f7).ok_or(invalid)?;
            Inst::Op {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }
        }
        MISC_MEM => Inst::Fence,
        SYSTEM => {
            if f3 == 0 {
                match (word >> 20) & 0xFFF {
                    0 => Inst::Ecall,
                    1 => Inst::Ebreak,
                    _ => return Err(invalid),
                }
            } else if let Some(op) = CsrOp::from_funct3(f3) {
                Inst::Csr {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    csr: ((word >> 20) & 0xFFF) as u16,
                }
            } else {
                return Err(invalid);
            }
        }

        XBGAS_ELOAD => {
            let width = LoadWidth::from_funct3(f3).ok_or(invalid)?;
            Inst::ELoad {
                width,
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            }
        }
        XBGAS_ESTORE => {
            let width = StoreWidth::from_funct3(f3).ok_or(invalid)?;
            Inst::EStore {
                width,
                rs1: rs1(word),
                rs2: rs2(word),
                imm: imm_s(word),
            }
        }
        XBGAS_RAW => match f7 {
            0x00 => {
                let width = LoadWidth::from_funct3(f3).ok_or(invalid)?;
                Inst::ERLoad {
                    width,
                    rd: rd(word),
                    rs1: rs1(word),
                    ext2: ers2(word),
                }
            }
            0x01 => {
                let width = StoreWidth::from_funct3(f3).ok_or(invalid)?;
                Inst::ERStore {
                    width,
                    rs1: rs1(word),
                    rs2: rs2(word),
                    ext3: erd(word),
                }
            }
            0x02 => {
                if f3 != 0b011 {
                    return Err(invalid);
                }
                Inst::ERse {
                    ext1: erd(word),
                    rs1: rs1(word),
                    ext2: ers2(word),
                }
            }
            0x03 => {
                if f3 != 0b011 {
                    return Err(invalid);
                }
                Inst::ERle {
                    ext1: erd(word),
                    rs1: rs1(word),
                    ext2: ers2(word),
                }
            }
            _ => return Err(invalid),
        },
        XBGAS_ADDR => match f3 {
            0b000 => Inst::Eaddi {
                rd: rd(word),
                ext1: ers1(word),
                imm: imm_i(word),
            },
            0b001 => Inst::Eaddie {
                ext: erd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            },
            0b010 => Inst::Eaddix {
                ext1: erd(word),
                ext2: ers1(word),
                imm: imm_i(word),
            },
            _ => return Err(invalid),
        },

        other => return Err(DecodeError::UnknownOpcode(other)),
    })
}

/// Decode a contiguous run of instruction words in one pass.
///
/// This is the bulk form of [`decode`] used by simulators that translate
/// whole basic blocks at a time: the caller fetches a span of code once,
/// decodes it once, and keeps the resulting `Inst` array — no per-execution
/// re-decode. Undecodable words are kept as `Err` entries rather than
/// aborting the run, so a translator can stop at the first bad word while
/// still caching the valid prefix.
pub fn decode_all(words: &[u32]) -> Vec<Result<Inst, DecodeError>> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(i: Inst) {
        let word = encode(&i).unwrap_or_else(|e| panic!("encode {i:?}: {e}"));
        let back = decode(word).unwrap_or_else(|e| panic!("decode {i:?} ({word:#010x}): {e}"));
        assert_eq!(back, i, "roundtrip mismatch for word {word:#010x}");
    }

    #[test]
    fn roundtrip_all_loads_stores() {
        for w in LoadWidth::ALL {
            roundtrip(Inst::Load {
                width: w,
                rd: XReg::new(5),
                rs1: XReg::new(6),
                imm: -3,
            });
            roundtrip(Inst::ELoad {
                width: w,
                rd: XReg::new(7),
                rs1: XReg::new(8),
                imm: 2047,
            });
            roundtrip(Inst::ERLoad {
                width: w,
                rd: XReg::new(9),
                rs1: XReg::new(10),
                ext2: EReg::new(11),
            });
        }
        for w in StoreWidth::ALL {
            roundtrip(Inst::Store {
                width: w,
                rs1: XReg::new(1),
                rs2: XReg::new(2),
                imm: -2048,
            });
            roundtrip(Inst::EStore {
                width: w,
                rs1: XReg::new(3),
                rs2: XReg::new(4),
                imm: 100,
            });
            roundtrip(Inst::ERStore {
                width: w,
                rs1: XReg::new(5),
                rs2: XReg::new(6),
                ext3: EReg::new(7),
            });
        }
    }

    #[test]
    fn roundtrip_all_alu() {
        for op in AluOp::ALL {
            roundtrip(Inst::Op {
                op,
                rd: XReg::new(3),
                rs1: XReg::new(4),
                rs2: XReg::new(5),
            });
        }
        for op in AluImmOp::ALL {
            let imm = if op.is_shift() { 5 } else { -7 };
            roundtrip(Inst::OpImm {
                op,
                rd: XReg::new(6),
                rs1: XReg::new(7),
                imm,
            });
        }
    }

    #[test]
    fn roundtrip_control_flow() {
        for c in BranchCond::ALL {
            roundtrip(Inst::Branch {
                cond: c,
                rs1: XReg::new(1),
                rs2: XReg::new(2),
                offset: -4096,
            });
            roundtrip(Inst::Branch {
                cond: c,
                rs1: XReg::new(1),
                rs2: XReg::new(2),
                offset: 4094,
            });
        }
        roundtrip(Inst::Jal {
            rd: XReg::RA,
            offset: -1048576,
        });
        roundtrip(Inst::Jal {
            rd: XReg::ZERO,
            offset: 1048574,
        });
        roundtrip(Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::RA,
            imm: 0,
        });
    }

    #[test]
    fn roundtrip_misc_and_addr_mgmt() {
        roundtrip(Inst::Lui {
            rd: XReg::new(20),
            imm20: -524288,
        });
        roundtrip(Inst::Auipc {
            rd: XReg::new(21),
            imm20: 524287,
        });
        roundtrip(Inst::Fence);
        roundtrip(Inst::Ecall);
        roundtrip(Inst::Ebreak);
        roundtrip(Inst::ERse {
            ext1: EReg::new(30),
            rs1: XReg::new(29),
            ext2: EReg::new(28),
        });
        roundtrip(Inst::Eaddi {
            rd: XReg::new(13),
            ext1: EReg::new(14),
            imm: -1,
        });
        roundtrip(Inst::Eaddie {
            ext: EReg::new(15),
            rs1: XReg::new(16),
            imm: 42,
        });
        roundtrip(Inst::Eaddix {
            ext1: EReg::new(17),
            ext2: EReg::new(18),
            imm: -42,
        });
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(matches!(
            decode(0x7F),
            Err(DecodeError::UnknownOpcode(0x7F))
        ));
        // BRANCH with funct3=0b010 is invalid.
        let bad = 0x63 | (0b010 << 12);
        assert!(matches!(decode(bad), Err(DecodeError::InvalidFunct { .. })));
        // XBGAS_RAW with funct7=0x05 is invalid.
        let bad = 0x5B | (0x05 << 25) | (0b011 << 12);
        assert!(matches!(decode(bad), Err(DecodeError::InvalidFunct { .. })));
    }

    #[test]
    fn imm_sign_extension() {
        // sd x1, -8(x2)
        let i = Inst::Store {
            width: StoreWidth::D,
            rs1: XReg::new(2),
            rs2: XReg::new(1),
            imm: -8,
        };
        let w = encode(&i).unwrap();
        match decode(w).unwrap() {
            Inst::Store { imm, .. } => assert_eq!(imm, -8),
            other => panic!("decoded {other:?}"),
        }
    }
}
