//! Register model for the xBGAS-extended RV64 architecture.
//!
//! The xBGAS extension (paper §3.2, Figure 1) adds a file of 32 *extended*
//! registers `e0`–`e31` alongside the 32 base integer registers `x0`–`x31`.
//! A base register and its corresponding extended register are combined to
//! form a 128-bit *extended address*: the extended register holds an object
//! ID naming a remote resource and the base register holds a conventional
//! 64-bit address within that resource.

use std::fmt;

/// Index of a base integer register `x0`–`x31`.
///
/// `x0` is hard-wired to zero, exactly as in standard RV64I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XReg(u8);

/// Index of an xBGAS extended register `e0`–`e31`.
///
/// Extended registers hold the upper 64 bits (the object ID) of a 128-bit
/// extended address. By convention — mirrored from the xBGAS runtime — an
/// object ID of `0` designates the local processing element, and remote
/// object IDs are resolved through the Object Look-Aside Buffer (OLB).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EReg(u8);

/// ABI mnemonics for the base integer registers, indexed by register number.
pub const X_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl XReg {
    /// The hard-wired zero register.
    pub const ZERO: XReg = XReg(0);
    /// Return address register (`x1`).
    pub const RA: XReg = XReg(1);
    /// Stack pointer register (`x2`).
    pub const SP: XReg = XReg(2);
    /// First argument / return value register (`x10`).
    pub const A0: XReg = XReg(10);
    /// Second argument register (`x11`).
    pub const A1: XReg = XReg(11);

    /// Construct from a raw register number, which must be `< 32`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "x-register index out of range");
        XReg(n)
    }

    /// Construct from a raw register number if it is in range.
    #[inline]
    pub const fn try_new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(XReg(n))
        } else {
            None
        }
    }

    /// The raw register number `0..32`.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// The register number as a `usize`, for register-file indexing. The
    /// mask is a no-op (construction guarantees `n < 32`) but lets the
    /// compiler drop the bounds check on every `x[r.idx()]` in the
    /// simulator's hot loops.
    #[inline]
    pub const fn idx(self) -> usize {
        (self.0 & 31) as usize
    }

    /// ABI mnemonic (`zero`, `ra`, `sp`, `a0`, …).
    #[inline]
    pub fn abi_name(self) -> &'static str {
        X_ABI_NAMES[self.0 as usize]
    }

    /// Parse either an ABI name (`a0`) or a numeric name (`x10`).
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(rest) = s.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return Self::try_new(n);
            }
        }
        // `fp` is an alias for `s0`/`x8`.
        if s == "fp" {
            return Some(XReg(8));
        }
        X_ABI_NAMES
            .iter()
            .position(|&name| name == s)
            .map(|i| XReg(i as u8))
    }
}

impl EReg {
    /// `e0`, conventionally holding object ID 0 (the local PE).
    pub const E0: EReg = EReg(0);

    /// Construct from a raw register number, which must be `< 32`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "e-register index out of range");
        EReg(n)
    }

    /// Construct from a raw register number if it is in range.
    #[inline]
    pub const fn try_new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(EReg(n))
        } else {
            None
        }
    }

    /// The raw register number `0..32`.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// The register number as a `usize`, for register-file indexing. Masked
    /// like [`XReg::idx`] so indexing is bounds-check-free.
    #[inline]
    pub const fn idx(self) -> usize {
        (self.0 & 31) as usize
    }

    /// The extended register that *naturally corresponds* to a base register.
    ///
    /// Base-integer xBGAS load/store instructions (e.g. `eld rd, imm(rs1)`)
    /// do not name an extended register explicitly; they implicitly use the
    /// extended register with the same index as `rs1` (paper §3.2).
    #[inline]
    pub const fn paired_with(x: XReg) -> Self {
        EReg(x.num())
    }

    /// Parse a textual name of the form `eN`.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix('e')?;
        rest.parse::<u8>().ok().and_then(Self::try_new)
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}({})", self.0, self.abi_name())
    }
}

impl fmt::Display for EReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for EReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xreg_abi_roundtrip() {
        for n in 0..32u8 {
            let r = XReg::new(n);
            assert_eq!(XReg::parse(r.abi_name()), Some(r));
            assert_eq!(XReg::parse(&format!("x{n}")), Some(r));
        }
    }

    #[test]
    fn xreg_fp_alias() {
        assert_eq!(XReg::parse("fp"), Some(XReg::new(8)));
        assert_eq!(XReg::parse("s0"), Some(XReg::new(8)));
    }

    #[test]
    fn xreg_out_of_range() {
        assert_eq!(XReg::try_new(32), None);
        assert_eq!(XReg::parse("x32"), None);
        assert_eq!(XReg::parse("q7"), None);
    }

    #[test]
    fn ereg_roundtrip() {
        for n in 0..32u8 {
            let r = EReg::new(n);
            assert_eq!(EReg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(EReg::parse("e32"), None);
        assert_eq!(EReg::parse("x3"), None);
    }

    #[test]
    fn ereg_pairing_follows_base_index() {
        for n in 0..32u8 {
            assert_eq!(EReg::paired_with(XReg::new(n)).num(), n);
        }
    }

    #[test]
    #[should_panic(expected = "x-register index out of range")]
    fn xreg_new_panics() {
        let _ = XReg::new(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(XReg::new(10).to_string(), "a0");
        assert_eq!(EReg::new(17).to_string(), "e17");
        assert_eq!(XReg::ZERO.to_string(), "zero");
    }
}
