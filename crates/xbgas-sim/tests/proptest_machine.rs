//! Property tests for the machine's execute path: random straight-line
//! ALU programs run on the full fetch/decode/execute pipeline must match
//! a register-file oracle driven directly by the pure evaluation
//! functions, and random remote-transfer scripts must preserve data.

// The `..ProptestConfig::default()` spread is upstream proptest's
// canonical config idiom; the local shim happens to have no other
// fields, which trips needless_update.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use xbgas_isa::{encode, pseudo, AluImmOp, AluOp, Inst, XReg};
use xbgas_sim::asm::assemble;
use xbgas_sim::cost::MachineConfig;
use xbgas_sim::hart::{eval_op, eval_op_imm};
use xbgas_sim::machine::{Machine, RunExit};

/// A straight-line ALU instruction over registers x5..x12.
#[derive(Clone, Debug)]
enum AluInst {
    Op(AluOp, u8, u8, u8),
    OpImm(AluImmOp, u8, u8, i32),
}

fn arb_reg() -> impl Strategy<Value = u8> {
    5u8..13
}

fn arb_alu_prog() -> impl Strategy<Value = Vec<AluInst>> {
    prop::collection::vec(
        prop_oneof![
            (
                prop::sample::select(AluOp::ALL.to_vec()),
                arb_reg(),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rd, rs1, rs2)| AluInst::Op(op, rd, rs1, rs2)),
            (
                prop::sample::select(AluImmOp::ALL.to_vec()),
                arb_reg(),
                arb_reg(),
                -2048i32..=2047
            )
                .prop_map(|(op, rd, rs1, imm)| {
                    let imm = if op.is_shift() {
                        imm.unsigned_abs() as i32 % if op.is_word() { 32 } else { 64 }
                    } else {
                        imm
                    };
                    AluInst::OpImm(op, rd, rs1, imm)
                }),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The machine's fetch→decode→execute of an encoded program produces
    /// exactly the register file computed by applying the pure ALU
    /// semantics in order.
    #[test]
    fn machine_matches_register_oracle(prog in arb_alu_prog(), seeds in prop::array::uniform8(any::<u64>())) {
        // Oracle register file (x0 stays zero; x5..x12 seeded).
        let mut oracle = [0u64; 32];
        for (i, &s) in seeds.iter().enumerate() {
            oracle[5 + i] = s;
        }

        // Build the machine program: seed registers via memory-free
        // means is awkward for 64-bit values, so poke them directly.
        let mut insts: Vec<Inst> = Vec::new();
        for step in &prog {
            match *step {
                AluInst::Op(op, rd, rs1, rs2) => {
                    insts.push(Inst::Op {
                        op,
                        rd: XReg::new(rd),
                        rs1: XReg::new(rs1),
                        rs2: XReg::new(rs2),
                    });
                }
                AluInst::OpImm(op, rd, rs1, imm) => {
                    insts.push(Inst::OpImm {
                        op,
                        rd: XReg::new(rd),
                        rs1: XReg::new(rs1),
                        imm,
                    });
                }
            }
        }
        insts.push(pseudo::li(XReg::new(17), 0)); // EXIT
        insts.push(Inst::Ecall);
        let words: Vec<u32> = insts.iter().map(|i| encode(i).unwrap()).collect();

        let mut m = Machine::new(MachineConfig::test(1));
        m.load_program(0x1000, &words);
        for (i, &s) in seeds.iter().enumerate() {
            m.hart_mut(0).x[5 + i] = s;
        }
        let summary = m.run();
        prop_assert_eq!(summary.exit, RunExit::AllHalted);

        // Drive the oracle.
        for step in &prog {
            match *step {
                AluInst::Op(op, rd, rs1, rs2) => {
                    let v = eval_op(op, oracle[rs1 as usize], oracle[rs2 as usize]);
                    if rd != 0 { oracle[rd as usize] = v; }
                }
                AluInst::OpImm(op, rd, rs1, imm) => {
                    let v = eval_op_imm(op, oracle[rs1 as usize], imm);
                    if rd != 0 { oracle[rd as usize] = v; }
                }
            }
        }
        // Indexes two arrays in lockstep; enumerate() fits neither.
        #[allow(clippy::needless_range_loop)]
        for r in 5..13 {
            prop_assert_eq!(
                m.hart(0).x[r],
                oracle[r],
                "register x{} after {:?}",
                r,
                prog
            );
        }
    }

    /// Remote stores of arbitrary values at arbitrary (aligned) offsets
    /// land intact on the target PE — the ISA-level data-integrity
    /// property behind every higher-level transfer.
    #[test]
    fn remote_stores_preserve_values(
        values in prop::collection::vec(any::<u64>(), 1..12),
        base_page in 2u64..8,
    ) {
        let base = base_page * 0x1000;
        let mut m = Machine::new(MachineConfig::test(2));

        // PE0 writes each value with esd at base + 8i on PE1.
        let mut asm = String::from("eaddie e5, zero, 2\n"); // e5 pairs with t0 (x5)
        for (i, _) in values.iter().enumerate() {
            // Values arrive via pre-seeded memory on PE0, loaded locally,
            // then stored remotely: exercises ld + esd together.
            asm.push_str(&format!(
                "li t2, {off}\nld t1, 0(t2)\nli t0, {dst}\nesd t1, 0(t0)\n",
                off = 0x400 + 8 * i,
                dst = base + 8 * i as u64,
            ));
        }
        asm.push_str("li a7, 0\necall\n");
        let img = assemble(0x1000, &asm).unwrap();
        m.load_words(0, 0x1000, &img.words);
        let exit = assemble(0x1000, "li a7, 0\necall").unwrap();
        m.load_words(1, 0x1000, &exit.words);
        for (i, &v) in values.iter().enumerate() {
            m.mem_mut(0).store_u64(0x400 + 8 * i as u64, v).unwrap();
        }

        let summary = m.run();
        prop_assert_eq!(summary.exit, RunExit::AllHalted);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(m.mem(1).load_u64(base + 8 * i as u64).unwrap(), v);
        }
        prop_assert_eq!(m.noc_stats().transactions, values.len() as u64);
    }

    /// Assemble → disassemble → reassemble is a fixpoint for random
    /// label-free ALU programs.
    #[test]
    fn asm_disasm_fixpoint(prog in arb_alu_prog()) {
        let mut insts: Vec<Inst> = Vec::new();
        for step in &prog {
            insts.push(match *step {
                AluInst::Op(op, rd, rs1, rs2) => Inst::Op {
                    op,
                    rd: XReg::new(rd),
                    rs1: XReg::new(rs1),
                    rs2: XReg::new(rs2),
                },
                AluInst::OpImm(op, rd, rs1, imm) => Inst::OpImm {
                    op,
                    rd: XReg::new(rd),
                    rs1: XReg::new(rs1),
                    imm,
                },
            });
        }
        let words: Vec<u32> = insts.iter().map(|i| encode(i).unwrap()).collect();
        let listing: Vec<String> = words.iter().map(|&w| xbgas_isa::disasm_word(w)).collect();
        let round = assemble(0, &listing.join("\n")).unwrap();
        prop_assert_eq!(round.words, words);
    }
}
