//! Timing parameters for the simulator and the runtime's simulated clock.
//!
//! All latencies are in core cycles. `CostConfig::paper()` is the
//! calibration used by the figure-reproduction harnesses; EXPERIMENTS.md
//! records the values and the shapes they produce.

use crate::cache::CacheConfig;
use crate::noc::NocConfig;
use crate::tlb::TlbConfig;

/// Per-instruction-class and memory-system latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostConfig {
    /// Instruction fetch (assumes a perfect I-cache).
    pub fetch_cycles: u64,
    /// Simple ALU operations, branches, jumps, address management.
    pub alu_cycles: u64,
    /// Integer multiply.
    pub mul_cycles: u64,
    /// Integer divide/remainder.
    pub div_cycles: u64,
    /// `fence`.
    pub fence_cycles: u64,
    /// Environment-call overhead (the xBGAS story: syscalls are what remote
    /// accesses *avoid*, so this is deliberately large relative to a load).
    pub ecall_cycles: u64,
    /// DRAM access latency (paid on an L2 miss, and by the remote side of a
    /// remote access).
    pub mem_cycles: u64,
    /// Effective per-line cost for *streaming* (sequential) misses, where
    /// the hardware prefetcher hides most of `mem_cycles`. Charged for every
    /// line after the first in a contiguous bulk access.
    pub stream_miss_cycles: u64,
    /// OLB translation latency for nonzero object IDs.
    pub olb_lookup_cycles: u64,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 data cache geometry.
    pub l2: CacheConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Interconnect parameters.
    pub noc: NocConfig,
}

impl CostConfig {
    /// The calibration used to reproduce the paper's figures: the §5.1 cache
    /// and TLB geometry with latencies typical of a simple in-order RV64
    /// core, and a lightweight xBGAS fabric.
    pub const fn paper() -> Self {
        CostConfig {
            fetch_cycles: 1,
            alu_cycles: 1,
            mul_cycles: 3,
            div_cycles: 20,
            fence_cycles: 3,
            ecall_cycles: 200,
            mem_cycles: 200,
            stream_miss_cycles: 8,
            olb_lookup_cycles: 2,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            tlb: TlbConfig::paper(),
            noc: NocConfig::paper(),
        }
    }

    /// A functional-only configuration: every action costs one cycle and the
    /// fabric is free. Useful when a test cares about architectural state,
    /// not timing.
    pub const fn functional() -> Self {
        CostConfig {
            fetch_cycles: 1,
            alu_cycles: 1,
            mul_cycles: 1,
            div_cycles: 1,
            fence_cycles: 1,
            ecall_cycles: 1,
            mem_cycles: 0,
            stream_miss_cycles: 0,
            olb_lookup_cycles: 0,
            l1: CacheConfig {
                size_bytes: 1024,
                ways: 1,
                line_bytes: 64,
                hit_cycles: 0,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                ways: 1,
                line_bytes: 64,
                hit_cycles: 0,
            },
            tlb: TlbConfig {
                entries: 16,
                page_bytes: 4096,
                miss_cycles: 0,
            },
            noc: NocConfig::free(),
        }
    }
}

/// Which execution engine [`crate::machine::Machine::run`] drives.
///
/// Both engines produce bit-identical architectural results — registers,
/// memory, `instret`, *and* cycle totals — which the differential suite
/// (`tests/sim_differential.rs`) enforces on every end-to-end kernel. The
/// interpretive stepper is the oracle; the block engine is the fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Decode-dispatch interpreter: fetch + decode on every step.
    #[default]
    Interp,
    /// Basic-block translation: blocks are discovered at first execution,
    /// pre-decoded into a cached flat IR with fused superinstructions, and
    /// dispatched without re-fetch/re-decode (see `xbgas_sim::block`).
    Block,
}

/// Whole-machine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of harts (the paper's environment has 12 RISC-V cores).
    pub n_harts: usize,
    /// Physical memory per PE, in bytes.
    pub mem_bytes: usize,
    /// Timing parameters.
    pub cost: CostConfig,
    /// Hard cap on simulated cycles per hart before [`crate::machine::RunExit::CycleLimit`].
    pub max_cycles: u64,
    /// Execution engine (interpretive stepper or block translation).
    pub exec: ExecMode,
}

impl MachineConfig {
    /// The paper's §5.1 environment: 12 cores, 256-entry TLB, 16 KB L1,
    /// 8 MB L2; 16 MiB of memory per PE.
    pub const fn paper() -> Self {
        MachineConfig {
            n_harts: 12,
            mem_bytes: 16 * 1024 * 1024,
            cost: CostConfig::paper(),
            max_cycles: u64::MAX,
            exec: ExecMode::Interp,
        }
    }

    /// A small machine for unit tests: `n` harts, 64 KiB each, functional costs.
    pub const fn test(n_harts: usize) -> Self {
        MachineConfig {
            n_harts,
            mem_bytes: 64 * 1024,
            cost: CostConfig::functional(),
            max_cycles: 10_000_000,
            exec: ExecMode::Interp,
        }
    }

    /// The same configuration running on the block-translation engine.
    pub const fn with_block_engine(mut self) -> Self {
        self.exec = ExecMode::Block;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_section_5_1() {
        let c = MachineConfig::paper();
        assert_eq!(c.n_harts, 12);
        assert_eq!(c.cost.tlb.entries, 256);
        assert_eq!(c.cost.l1.size_bytes, 16 * 1024);
        assert_eq!(c.cost.l1.ways, 8);
        assert_eq!(c.cost.l2.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.cost.l2.ways, 8);
    }

    #[test]
    fn functional_charges_nothing_for_memory() {
        let c = CostConfig::functional();
        assert_eq!(c.mem_cycles, 0);
        assert_eq!(c.noc.transfer_cost(1024, 5), 0);
    }
}
