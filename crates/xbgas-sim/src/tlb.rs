//! Translation look-aside buffer model.
//!
//! The paper's cores each carry a 256-entry TLB (§5.1). Our simulator uses
//! a flat physical address space per PE, so the TLB exists purely as a
//! timing component: a miss charges a page-walk penalty. It is modelled as
//! fully associative with true-LRU replacement over 4 KiB pages.

/// Configuration of the TLB model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (paper: 256).
    pub entries: usize,
    /// Page size in bytes (4 KiB).
    pub page_bytes: u64,
    /// Page-walk penalty charged on a miss, in cycles.
    pub miss_cycles: u64,
}

impl TlbConfig {
    /// The paper's 256-entry TLB with 4 KiB pages and a 120-cycle walk
    /// (a three-level Sv39 walk touching DRAM).
    pub const fn paper() -> Self {
        TlbConfig {
            entries: 256,
            page_bytes: 4096,
            miss_cycles: 120,
        }
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (page walk performed).
    pub misses: u64,
}

/// Fully-associative LRU TLB.
pub struct Tlb {
    config: TlbConfig,
    /// (vpn, last-touch tick) pairs.
    entries: Vec<(u64, u64)>,
    /// vpn → slot in `entries`, so the hit path is O(1) instead of a linear
    /// scan over all 256 entries. Replacement still selects the minimum
    /// tick; ticks are unique and monotonic, so the victim choice is
    /// identical to the original scan-based implementation.
    index: std::collections::HashMap<u64, usize>,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Build an empty TLB.
    ///
    /// # Panics
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB must have at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            index: std::collections::HashMap::with_capacity(config.entries),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Configuration of this TLB.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Reset statistics (resident translations are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Look up the page containing `addr`; returns the latency in cycles
    /// (0 on a hit, the walk penalty on a miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let vpn = addr / self.config.page_bytes;
        if let Some(&slot) = self.index.get(&vpn) {
            self.entries[slot].1 = self.tick;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() < self.config.entries {
            self.index.insert(vpn, self.entries.len());
            self.entries.push((vpn, self.tick));
        } else {
            // Replace the LRU entry (minimum tick; misses are already paying
            // a page walk, so the linear scan here is off the hot path).
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("TLB has at least one entry");
            self.index.remove(&self.entries[lru].0);
            self.index.insert(vpn, lru);
            self.entries[lru] = (vpn, self.tick);
        }
        self.config.miss_cycles
    }

    /// Drop all translations.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_cycles: 120,
        })
    }

    #[test]
    fn miss_then_hit_same_page() {
        let mut t = tiny();
        assert_eq!(t.access(0x1000), 120);
        assert_eq!(t.access(0x1FFF), 0); // same page
        assert_eq!(t.access(0x2000), 120); // next page
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0 -> page 1 is LRU
        t.access(0x2000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0); // page 0 still resident
        assert_eq!(t.access(0x1000), 120); // page 1 was evicted
    }

    #[test]
    fn flush_drops_everything() {
        let mut t = tiny();
        t.access(0x0);
        t.flush();
        assert_eq!(t.access(0x0), 120);
    }

    #[test]
    fn paper_config() {
        let c = TlbConfig::paper();
        assert_eq!(c.entries, 256);
        assert_eq!(c.page_bytes, 4096);
    }

    #[test]
    fn capacity_behaviour() {
        // Touching 256 distinct pages then re-touching them in order: all hit.
        let mut t = Tlb::new(TlbConfig::paper());
        for p in 0..256u64 {
            t.access(p * 4096);
        }
        t.reset_stats();
        for p in 0..256u64 {
            t.access(p * 4096);
        }
        assert_eq!(t.stats().misses, 0);
        assert_eq!(t.stats().hits, 256);
    }
}
