//! One RV64IM + xBGAS hardware thread (hart).
//!
//! A [`Hart`] holds only architectural state — program counter, the base
//! register file `x0`–`x31`, the xBGAS extended register file `e0`–`e31`
//! (paper Figure 1) — plus its cycle counter and run state. Execution is
//! driven by [`crate::machine::Machine`], which mediates memory, the OLB
//! and the interconnect; the pure ALU/branch semantics live here so they
//! can be tested in isolation.

use xbgas_isa::{AluImmOp, AluOp, BranchCond, EReg, XReg};

/// Why a hart stopped executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimFault {
    /// A data or fetch access fell outside physical memory.
    Memory(String),
    /// The word at `pc` did not decode.
    IllegalInstruction {
        /// Faulting program counter.
        pc: u64,
        /// The undecodable word.
        word: u32,
    },
    /// A remote access named an object ID with no OLB mapping.
    OlbMiss {
        /// Faulting program counter.
        pc: u64,
        /// The unmapped object ID.
        object_id: u64,
    },
    /// An `ecall` with an unknown function code in `a7`.
    UnknownSyscall {
        /// Faulting program counter.
        pc: u64,
        /// The unrecognised call number.
        number: u64,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// Faulting program counter.
        pc: u64,
    },
    /// A jump or taken branch targeted an address that is not 4-byte
    /// aligned. Reported precisely at the jump site (the RISC-V
    /// instruction-address-misaligned trap), rather than surfacing later
    /// as a confusing fetch error at the bogus target.
    InstructionMisaligned {
        /// Program counter of the jump/branch itself.
        pc: u64,
        /// The misaligned target address.
        target: u64,
    },
}

impl std::fmt::Display for SimFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFault::Memory(m) => write!(f, "memory fault: {m}"),
            SimFault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc={pc:#x}")
            }
            SimFault::OlbMiss { pc, object_id } => {
                write!(f, "OLB miss for object {object_id:#x} at pc={pc:#x}")
            }
            SimFault::UnknownSyscall { pc, number } => {
                write!(f, "unknown ecall {number} at pc={pc:#x}")
            }
            SimFault::Breakpoint { pc } => write!(f, "ebreak at pc={pc:#x}"),
            SimFault::InstructionMisaligned { pc, target } => {
                write!(f, "misaligned jump target {target:#x} at pc={pc:#x}")
            }
        }
    }
}

/// Run state of a hart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HartState {
    /// Executing normally.
    Running,
    /// Parked in the barrier `ecall`, waiting for its peers.
    WaitingBarrier,
    /// Exited via the exit `ecall`.
    Halted {
        /// Guest-provided exit code.
        code: u64,
    },
    /// Stopped by a fault.
    Faulted(SimFault),
}

/// Architectural + bookkeeping state of one hart.
#[derive(Clone, Debug)]
pub struct Hart {
    /// Program counter.
    pub pc: u64,
    /// Base integer register file; index 0 is hard-wired to zero on read.
    pub x: [u64; 32],
    /// xBGAS extended register file.
    pub e: [u64; 32],
    /// Simulated cycles consumed so far.
    pub cycles: u64,
    /// Retired instruction count.
    pub instret: u64,
    /// Current run state.
    pub state: HartState,
}

impl Hart {
    /// A freshly reset hart with `pc` at the given address.
    pub fn new(pc: u64) -> Self {
        Hart {
            pc,
            x: [0; 32],
            e: [0; 32],
            cycles: 0,
            instret: 0,
            state: HartState::Running,
        }
    }

    /// Read a base register; `x0` always reads zero (the write side keeps
    /// `x[0]` pinned at zero, so the read is a plain branchless index).
    #[inline]
    pub fn read_x(&self, r: XReg) -> u64 {
        self.x[r.idx()]
    }

    /// Write a base register; writes to `x0` are discarded — implemented
    /// branchlessly by writing through and re-zeroing slot 0, which is
    /// cheaper in the simulator's hot dispatch loops than a predicted-but-
    /// present branch per register write.
    #[inline]
    pub fn write_x(&mut self, r: XReg, v: u64) {
        self.x[r.idx()] = v;
        self.x[0] = 0;
    }

    /// Read an extended register.
    #[inline]
    pub fn read_e(&self, r: EReg) -> u64 {
        self.e[r.idx()]
    }

    /// Write an extended register.
    #[inline]
    pub fn write_e(&mut self, r: EReg, v: u64) {
        self.e[r.idx()] = v;
    }

    /// `true` when the hart can still make progress.
    pub fn is_live(&self) -> bool {
        matches!(self.state, HartState::Running | HartState::WaitingBarrier)
    }
}

/// Evaluate a register-register ALU operation on 64-bit values.
#[allow(unknown_lints, clippy::manual_checked_div)]
pub fn eval_op(op: AluOp, a: u64, b: u64) -> u64 {
    let (sa, sb) = (a as i64, b as i64);
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 0x3F) as u32),
        AluOp::Slt => (sa < sb) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr((b & 0x3F) as u32),
        AluOp::Sra => (sa.wrapping_shr((b & 0x3F) as u32)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => sext32(a.wrapping_add(b)),
        AluOp::Subw => sext32(a.wrapping_sub(b)),
        AluOp::Sllw => sext32((a as u32).wrapping_shl((b & 0x1F) as u32) as u64),
        AluOp::Srlw => sext32((a as u32).wrapping_shr((b & 0x1F) as u32) as u64),
        AluOp::Sraw => ((a as i32).wrapping_shr((b & 0x1F) as u32)) as i64 as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((sa as i128) * (sb as i128)) >> 64) as u64,
        AluOp::Mulhsu => (((sa as i128) * (b as u128 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluOp::Div => {
            if sb == 0 {
                u64::MAX // RISC-V: division by zero yields all ones
            } else if sa == i64::MIN && sb == -1 {
                sa as u64 // overflow case: result is the dividend
            } else {
                (sa / sb) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if sb == 0 {
                a
            } else if sa == i64::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Mulw => sext32((a as u32).wrapping_mul(b as u32) as u64),
        AluOp::Divw => {
            let (wa, wb) = (a as i32, b as i32);
            let r = if wb == 0 {
                -1i32
            } else if wa == i32::MIN && wb == -1 {
                wa
            } else {
                wa / wb
            };
            r as i64 as u64
        }
        AluOp::Divuw => {
            let (wa, wb) = (a as u32, b as u32);
            let r = wa.checked_div(wb).unwrap_or(u32::MAX);
            sext32(r as u64)
        }
        AluOp::Remw => {
            let (wa, wb) = (a as i32, b as i32);
            let r = if wb == 0 {
                wa
            } else if wa == i32::MIN && wb == -1 {
                0
            } else {
                wa % wb
            };
            r as i64 as u64
        }
        AluOp::Remuw => {
            let (wa, wb) = (a as u32, b as u32);
            let r = if wb == 0 { wa } else { wa % wb };
            sext32(r as u64)
        }
    }
}

/// Evaluate a register-immediate ALU operation.
pub fn eval_op_imm(op: AluImmOp, a: u64, imm: i32) -> u64 {
    let b = imm as i64 as u64;
    match op {
        AluImmOp::Addi => a.wrapping_add(b),
        AluImmOp::Slti => ((a as i64) < (b as i64)) as u64,
        AluImmOp::Sltiu => (a < b) as u64,
        AluImmOp::Xori => a ^ b,
        AluImmOp::Ori => a | b,
        AluImmOp::Andi => a & b,
        AluImmOp::Slli => eval_op(AluOp::Sll, a, b),
        AluImmOp::Srli => eval_op(AluOp::Srl, a, b),
        AluImmOp::Srai => eval_op(AluOp::Sra, a, b),
        AluImmOp::Addiw => sext32(a.wrapping_add(b)),
        AluImmOp::Slliw => eval_op(AluOp::Sllw, a, b),
        AluImmOp::Srliw => eval_op(AluOp::Srlw, a, b),
        AluImmOp::Sraiw => eval_op(AluOp::Sraw, a, b),
    }
}

/// Evaluate a branch condition.
pub fn branch_taken(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

#[inline]
fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired() {
        let mut h = Hart::new(0);
        h.write_x(XReg::ZERO, 42);
        assert_eq!(h.read_x(XReg::ZERO), 0);
        h.write_x(XReg::A0, 42);
        assert_eq!(h.read_x(XReg::A0), 42);
    }

    #[test]
    fn e_regs_are_plain() {
        let mut h = Hart::new(0);
        h.write_e(EReg::E0, 7);
        assert_eq!(h.read_e(EReg::E0), 7); // e0 is NOT hard-wired
    }

    #[test]
    fn word_ops_sign_extend() {
        // addw of two values whose 32-bit sum has bit 31 set.
        let r = eval_op(AluOp::Addw, 0x7FFF_FFFF, 1);
        assert_eq!(r, 0xFFFF_FFFF_8000_0000);
        let r = eval_op_imm(AluImmOp::Addiw, 0xFFFF_FFFF, 1);
        assert_eq!(r, 0); // 32-bit wrap then sign-extend
        let r = eval_op(AluOp::Srlw, 0x8000_0000, 1);
        assert_eq!(r, 0x4000_0000);
        let r = eval_op(AluOp::Sraw, 0x8000_0000, 1);
        assert_eq!(r, 0xFFFF_FFFF_C000_0000);
    }

    #[test]
    fn shifts_mask_amounts() {
        assert_eq!(eval_op(AluOp::Sll, 1, 64), 1); // shamt 64 & 0x3F == 0
        assert_eq!(eval_op(AluOp::Sllw, 1, 32), 1); // shamt 32 & 0x1F == 0
    }

    #[test]
    fn riscv_division_semantics() {
        assert_eq!(eval_op(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(eval_op(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(eval_op(AluOp::Rem, 7, 0), 7);
        assert_eq!(eval_op(AluOp::Remu, 7, 0), 7);
        // Overflow: i64::MIN / -1.
        assert_eq!(
            eval_op(AluOp::Div, i64::MIN as u64, u64::MAX),
            i64::MIN as u64
        );
        assert_eq!(eval_op(AluOp::Rem, i64::MIN as u64, u64::MAX), 0);
        // 32-bit variants.
        assert_eq!(eval_op(AluOp::Divw, 9, 0), u64::MAX); // -1 sign-extended
        assert_eq!(
            eval_op(AluOp::Divw, i32::MIN as u32 as u64, u32::MAX as u64),
            i32::MIN as i64 as u64
        );
    }

    #[test]
    fn mulh_variants() {
        assert_eq!(eval_op(AluOp::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(eval_op(AluOp::Mulh, u64::MAX, u64::MAX), 0); // (-1)*(-1)=1
        assert_eq!(eval_op(AluOp::Mulhsu, u64::MAX, u64::MAX), u64::MAX); // -1 * huge
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(BranchCond::Eq, 5, 5));
        assert!(branch_taken(BranchCond::Lt, u64::MAX, 0)); // -1 < 0 signed
        assert!(!branch_taken(BranchCond::Ltu, u64::MAX, 0)); // unsigned
        assert!(branch_taken(BranchCond::Geu, u64::MAX, 0));
        assert!(branch_taken(BranchCond::Ge, 0, u64::MAX)); // 0 >= -1 signed
    }

    #[test]
    fn liveness() {
        let mut h = Hart::new(0);
        assert!(h.is_live());
        h.state = HartState::WaitingBarrier;
        assert!(h.is_live());
        h.state = HartState::Halted { code: 0 };
        assert!(!h.is_live());
    }
}
