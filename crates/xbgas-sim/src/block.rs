//! Basic-block translation engine.
//!
//! The interpretive stepper in [`crate::machine`] pays a fetch, a decode and
//! a full dispatch for every guest instruction. This module removes that
//! overhead for the common case: at first execution of a `pc`, the
//! contiguous run of instructions up to the next control transfer (or
//! `ecall`/`ebreak`) is decoded **once** into a flat IR of [`BlockOp`]s and
//! cached per PE. Subsequent visits dispatch straight over the pre-decoded
//! ops. Hot idioms from the paper's GUPS/IS kernels are additionally fused
//! into superinstructions with translation-time-precomputed operands:
//!
//! * `lui`+`addi` constant materialisation ([`BlockOp::Li`]),
//! * the xorshift `slli`/`srli`+`xor` pair ([`BlockOp::ShiftXor`]) and the
//!   full three-pair RNG round ([`BlockOp::XorShift3`]),
//! * load / ALU-op / store read-modify-write triads
//!   ([`BlockOp::LoadOpStore`]) and the six-instruction indexed
//!   table-update of GUPS and IS ranking ([`BlockOp::IdxRmw`]),
//! * the streaming store + pointer-bump pair ([`BlockOp::StoreInc`]),
//! * `addi`+conditional-branch loop back-edges ([`BlockOp::AddiBranch`])
//!   and the three-instruction bump/decrement/branch loop tail
//!   ([`BlockOp::Addi2Branch`]),
//! * `eaddie` + the remote load it feeds ([`BlockOp::EaddiePair`]).
//!
//! Within a fused op, intermediate values are forwarded in host registers
//! (the guest dependency chain never round-trips through the in-memory
//! register file); every architectural register write still happens, and
//! the fusion guards — `x0` exclusions, base-register preservation,
//! feeds-chains — make the forwarded values provably identical.
//!
//! **Exactness contract.** The block engine must be bit-identical to the
//! stepper — registers, memory, `instret` *and* per-hart cycle counts — so
//! the interpreter remains a usable differential oracle
//! (`tests/sim_differential.rs`). Three rules make that hold:
//!
//! 1. *Per-component commit.* Every guest instruction, including each
//!    component of a fused superinstruction, commits `pc`/`cycles`/`instret`
//!    individually and re-checks the scheduling horizon first, so a block
//!    can yield (or fault) mid-fusion exactly where the stepper would have
//!    interleaved another hart. Resuming mid-span simply translates a fresh
//!    (overlapping) block keyed at the resume `pc`.
//! 2. *Scheduling horizon.* The discrete-event scheduler runs the hart with
//!    the smallest cycle count, ties to the smallest index. While a block
//!    executes, every other hart is frozen, so hart `pe` stays the
//!    scheduler's choice exactly while `cycles < lo` (the minimum over
//!    running lower-index harts) and `cycles <= hi` (minimum over running
//!    higher-index harts) — a single precomputed `limit = min(lo, hi + 1,
//!    max_cycles)` per dispatch.
//! 3. *Invalidation.* Every store (local, remote, from either engine) passes
//!    through [`Machine::note_store`]; a hit on translated bytes drops the
//!    affected blocks and raises `code_dirty`, which forces the engine out
//!    of the current block before it can execute a stale op — the next
//!    dispatch re-translates from current memory (self-modifying code, see
//!    `tests/sim_smc.rs`).
//!
//! Instructions without a specialised op (CSR, fences, environment calls,
//! most xBGAS ops) fall back to [`Machine::exec_inst`] — the same code the
//! stepper runs — so only the fused fast paths need differential scrutiny.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cost::CostConfig;
use crate::hart::{branch_taken, eval_op, eval_op_imm, Hart, HartState, SimFault};
use crate::machine::{Machine, RunExit, RunSummary};
use xbgas_isa::{decode_all, AluImmOp, AluOp, BranchCond, EReg, Inst, LoadWidth, StoreWidth, XReg};

/// Upper bound on guest instructions per translated block. Keeps
/// translation cost bounded when straight-line code runs into data.
const MAX_BLOCK_INSTS: usize = 64;

/// One op of the flat block IR. Specialised variants carry their
/// translation-time-precomputed cost (`fetch + execute` cycles) and
/// operands; variants whose cost depends on the memory model carry only the
/// static `fetch` part and add [`Machine::local_access_cost`] at run time,
/// exactly as the stepper does.
#[derive(Debug)]
pub(crate) enum BlockOp {
    /// `lui` with the shifted immediate precomputed.
    Lui { rd: XReg, value: u64, cost: u64 },
    /// `auipc`; the pc is a static property of the block, so the result is
    /// fully precomputed.
    Auipc { rd: XReg, value: u64, cost: u64 },
    /// Register-immediate ALU op.
    OpImm {
        op: AluImmOp,
        rd: XReg,
        rs1: XReg,
        imm: i32,
        cost: u64,
    },
    /// Register-register ALU op (cost already reflects mul/div class).
    Op {
        op: AluOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
        cost: u64,
    },
    /// Local load; `base` is the fetch cost, memory-model latency is added
    /// at run time.
    Load {
        width: LoadWidth,
        rd: XReg,
        rs1: XReg,
        imm: i64,
        base: u64,
    },
    /// Local store.
    Store {
        width: StoreWidth,
        rs1: XReg,
        rs2: XReg,
        imm: i64,
        base: u64,
    },
    /// `jal` with the target precomputed.
    Jal { rd: XReg, target: u64, cost: u64 },
    /// `jalr` (target is register-dependent).
    Jalr {
        rd: XReg,
        rs1: XReg,
        imm: i64,
        cost: u64,
    },
    /// Conditional branch with the taken target precomputed.
    Branch {
        cond: BranchCond,
        rs1: XReg,
        rs2: XReg,
        taken: u64,
        cost: u64,
    },
    /// Fused `lui rd, hi` + `addi rd, rd, lo`: both the intermediate and the
    /// final constant are precomputed. `cost` is per component.
    Li {
        rd: XReg,
        hi: u64,
        value: u64,
        cost: u64,
    },
    /// Fused `slli`/`srli` + `xor` consuming the shifted value — the
    /// xorshift RNG idiom at the heart of GUPS. The shift direction and
    /// masked amount are resolved at translation time so execution is a
    /// raw shift, not an ALU-op dispatch. `cost` is per component.
    ShiftXor {
        left: bool,
        shamt: u32,
        srd: XReg,
        srs1: XReg,
        xrd: XReg,
        xrs1: XReg,
        xrs2: XReg,
        cost: u64,
    },
    /// Fused load / ALU op / store to the same address (read-modify-write).
    /// Fusion guards guarantee neither the load nor the op clobbers the base
    /// register, so the effective address is computed once.
    LoadOpStore {
        lw: LoadWidth,
        lrd: XReg,
        base_reg: XReg,
        imm: i64,
        rmw: RmwOp,
        ord: XReg,
        ors1: XReg,
        op_cost: u64,
        sw: StoreWidth,
        srs2: XReg,
        mem_base: u64,
    },
    /// Fused three chained `slli`/`srli`+`xor` pairs over one state
    /// register — the complete xorshift RNG round shared by GUPS and the
    /// IS key generator. The state value is forwarded in a host register
    /// across all six components (each intermediate is still written to
    /// the architectural file), so the round costs pure ALU work instead
    /// of six store-to-load round-trips. `cost` is per component.
    XorShift3 {
        s: XReg,
        t: [XReg; 3],
        left: [bool; 3],
        shamt: [u32; 3],
        cost: u64,
    },
    /// Fused six-instruction indexed read-modify-write — the table-update
    /// idiom at the heart of both GUPS and IS rank: an index-producing ALU
    /// op, a scale (`slli`), the base add, then a load/op/store triad on
    /// the computed address. One dispatch covers six guest instructions.
    IdxRmw {
        idx: RmwOp,
        idx_rd: XReg,
        idx_rs1: XReg,
        idx_cost: u64,
        shamt: u32,
        sh_rd: XReg,
        sh_rs1: XReg,
        add_rd: XReg,
        add_rs1: XReg,
        add_rs2: XReg,
        lw: LoadWidth,
        lrd: XReg,
        imm: i64,
        rmw: RmwOp,
        ord: XReg,
        ors1: XReg,
        op_cost: u64,
        sw: StoreWidth,
        srs2: XReg,
        alu: u64,
        mem_base: u64,
    },
    /// Fused store + the register-immediate op that follows it — the
    /// streaming post-increment idiom (`sw`/`addi`) of the IS key
    /// generation loop.
    StoreInc {
        width: StoreWidth,
        rs1: XReg,
        rs2: XReg,
        imm: i64,
        base: u64,
        p_op: AluImmOp,
        p_rd: XReg,
        p_rs1: XReg,
        p_imm: i32,
        p_cost: u64,
    },
    /// Fused `addi` + conditional branch reading its result — the canonical
    /// counted-loop back-edge. `cost` is per component.
    AddiBranch {
        ard: XReg,
        ars1: XReg,
        aimm: i32,
        cond: BranchCond,
        brs1: XReg,
        brs2: XReg,
        taken: u64,
        cost: u64,
    },
    /// Fused register-immediate op + `addi` + conditional branch reading
    /// the `addi`'s result — the "bump pointer, decrement counter, loop"
    /// tail shared by streaming kernels. `cost` is per component.
    Addi2Branch {
        p_op: AluImmOp,
        p_rd: XReg,
        p_rs1: XReg,
        p_imm: i32,
        ard: XReg,
        ars1: XReg,
        aimm: i32,
        cond: BranchCond,
        brs1: XReg,
        brs2: XReg,
        taken: u64,
        cost: u64,
    },
    /// Fused `eaddie` + the remote load it feeds the object ID to. The
    /// first component is specialised; the load half runs through
    /// [`Machine::exec_inst`] (remote resolution involves the OLB, the
    /// interconnect and the remote memory model).
    EaddiePair {
        ext: EReg,
        rs1: XReg,
        imm: i32,
        cost: u64,
        inst: Inst,
        word: u32,
    },
    /// Anything else: pre-decoded, executed by the stepper's own
    /// [`Machine::exec_inst`].
    Generic { inst: Inst, word: u32 },
}

/// The ALU component of a fused read-modify-write triad: register-register
/// (`ld/xor/sd`, GUPS) or register-immediate (`ld/addi/sd`, IS ranking).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RmwOp {
    /// `op ord, ors1, rs2`.
    Reg { op: AluOp, rs2: XReg },
    /// `op ord, ors1, imm`.
    Imm { op: AluImmOp, imm: i32 },
}

/// A translated basic block: the guest address range it was decoded from
/// and its fused op sequence.
#[derive(Debug)]
pub(crate) struct Block {
    /// Guest pc of the first instruction (cache key).
    pub(crate) start: u64,
    /// One past the last instruction byte (for invalidation overlap tests).
    pub(crate) end: u64,
    ops: Vec<BlockOp>,
    /// Total cycle cost of one full pass when every op's cost is statically
    /// known (no `Generic`/`EaddiePair`, and loads/stores only under the
    /// free memory model). Lets the engine pre-check the scheduling budget
    /// once and run the whole pass with no per-component horizon checks.
    static_cost: Option<u64>,
    /// Counter totals before each op (final entry: the whole pass), built
    /// only for statically-costed blocks. The fast pass keeps no per-op
    /// counters at all and reconstructs exact `pc`/`cycles`/`instret` from
    /// this table at the points where they become observable.
    prefix: Vec<PassCount>,
}

/// Architectural-counter totals accumulated over a prefix of a block's ops:
/// `pc` offset from the block start, cycle cost, and instructions retired.
#[derive(Debug, Default, Clone, Copy)]
struct PassCount {
    pc_off: u64,
    cycles: u64,
    instret: u64,
}

/// Number of guest instructions an op retires (fused ops retire several).
fn op_inst_count(op: &BlockOp) -> u64 {
    match op {
        BlockOp::Li { .. }
        | BlockOp::ShiftXor { .. }
        | BlockOp::AddiBranch { .. }
        | BlockOp::StoreInc { .. }
        | BlockOp::EaddiePair { .. } => 2,
        BlockOp::LoadOpStore { .. } | BlockOp::Addi2Branch { .. } => 3,
        BlockOp::XorShift3 { .. } | BlockOp::IdxRmw { .. } => 6,
        _ => 1,
    }
}

/// Per-PE cache of translated blocks, keyed by start pc, plus the covering
/// address range so the store-side invalidation probe is two compares.
pub(crate) struct BlockCache {
    map: HashMap<u64, Arc<Block>>,
    lo: u64,
    hi: u64,
}

impl BlockCache {
    pub(crate) fn new() -> Self {
        BlockCache {
            map: HashMap::new(),
            lo: u64::MAX,
            hi: 0,
        }
    }

    /// Drop every translation (program reload, direct memory mutation).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.lo = u64::MAX;
        self.hi = 0;
    }

    /// Does `[addr, addr + bytes)` touch any translated bytes? False in
    /// O(1) for the overwhelmingly common data-store case (and always false
    /// when the cache is empty, e.g. in interpreter mode).
    pub(crate) fn overlaps(&self, addr: u64, bytes: usize) -> bool {
        addr < self.hi && addr + bytes as u64 > self.lo
    }

    /// Remove every block whose range intersects `[addr, addr + bytes)`.
    pub(crate) fn invalidate(&mut self, addr: u64, bytes: usize) {
        let end = addr + bytes as u64;
        self.map.retain(|_, b| b.end <= addr || b.start >= end);
        self.lo = u64::MAX;
        self.hi = 0;
        for b in self.map.values() {
            self.lo = self.lo.min(b.start);
            self.hi = self.hi.max(b.end);
        }
    }

    fn get(&self, pc: u64) -> Option<Arc<Block>> {
        self.map.get(&pc).cloned()
    }

    fn insert(&mut self, block: Arc<Block>) {
        self.lo = self.lo.min(block.start);
        self.hi = self.hi.max(block.end);
        self.map.insert(block.start, block);
    }

    /// Number of resident translations (used by tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// Cost of a register-register op including fetch, by operation class —
/// mirrors the stepper's dispatch.
fn op_exec_cost(cost: &CostConfig, op: AluOp) -> u64 {
    use AluOp::*;
    cost.fetch_cycles
        + match op {
            Mul | Mulh | Mulhsu | Mulhu | Mulw => cost.mul_cycles,
            Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw => cost.div_cycles,
            _ => cost.alu_cycles,
        }
}

/// Discover and translate the basic block starting at `start` on PE `pe`.
/// Returns `None` when even the first word cannot be fetched or decoded —
/// the caller then takes one interpretive step to reproduce the exact fault.
fn translate(m: &Machine, pe: usize, start: u64) -> Option<Block> {
    let mut words = Vec::with_capacity(MAX_BLOCK_INSTS);
    for i in 0..MAX_BLOCK_INSTS {
        match m.mems[pe].load_u32(start + 4 * i as u64) {
            Ok(w) => words.push(w),
            Err(_) => break,
        }
    }
    let mut insts: Vec<(Inst, u32)> = Vec::with_capacity(words.len());
    for (i, d) in decode_all(&words).into_iter().enumerate() {
        match d {
            Ok(inst) => {
                insts.push((inst, words[i]));
                if inst.ends_block() {
                    break;
                }
            }
            // An undecodable word ends the block; if execution actually
            // falls through to it, the next dispatch single-steps and
            // faults exactly as the interpreter would.
            Err(_) => break,
        }
    }
    if insts.is_empty() {
        return None;
    }
    let ops = fuse(&m.config.cost, start, &insts);
    let static_cost: Option<u64> = ops
        .iter()
        .map(|op| static_op_cost(op, m.mem_model_free))
        .sum();
    let prefix = if static_cost.is_some() {
        let mut v = Vec::with_capacity(ops.len() + 1);
        let mut acc = PassCount::default();
        for op in &ops {
            v.push(acc);
            let n = op_inst_count(op);
            acc.pc_off += 4 * n;
            acc.instret += n;
            acc.cycles += static_op_cost(op, m.mem_model_free)
                .expect("every op of a statically-costed block has a static cost");
        }
        v.push(acc);
        v
    } else {
        Vec::new()
    };
    Some(Block {
        start,
        end: start + 4 * insts.len() as u64,
        ops,
        static_cost,
        prefix,
    })
}

/// The cycle cost of `op` when it is statically known, `None` when it
/// depends on run-time state (the memory model, or arbitrary `exec_inst`
/// instructions).
fn static_op_cost(op: &BlockOp, free: bool) -> Option<u64> {
    Some(match op {
        BlockOp::Lui { cost, .. }
        | BlockOp::Auipc { cost, .. }
        | BlockOp::OpImm { cost, .. }
        | BlockOp::Op { cost, .. }
        | BlockOp::Jal { cost, .. }
        | BlockOp::Jalr { cost, .. }
        | BlockOp::Branch { cost, .. } => *cost,
        BlockOp::Li { cost, .. }
        | BlockOp::ShiftXor { cost, .. }
        | BlockOp::AddiBranch { cost, .. } => 2 * cost,
        BlockOp::Addi2Branch { cost, .. } => 3 * cost,
        BlockOp::XorShift3 { cost, .. } => 6 * cost,
        BlockOp::Load { base, .. } | BlockOp::Store { base, .. } if free => *base,
        BlockOp::LoadOpStore {
            mem_base, op_cost, ..
        } if free => 2 * mem_base + op_cost,
        BlockOp::IdxRmw {
            idx_cost,
            op_cost,
            alu,
            mem_base,
            ..
        } if free => idx_cost + 2 * alu + 2 * mem_base + op_cost,
        BlockOp::StoreInc { base, p_cost, .. } if free => base + p_cost,
        _ => return None,
    })
}

/// Lower decoded instructions to the fused IR. Patterns are tried longest
/// first; anything unmatched becomes a specialised single or a
/// [`BlockOp::Generic`].
/// Classify the middle op of a read-modify-write fusion candidate.
/// Returns `(rmw, rd, rs1, consumes_load, cost)` when `mid` is a plain ALU
/// op, where `consumes_load` says whether it reads the freshly loaded value.
fn rmw_parts(
    cost: &CostConfig,
    alu: u64,
    mid: Inst,
    lrd: XReg,
) -> Option<(RmwOp, XReg, XReg, bool, u64)> {
    match mid {
        Inst::Op { op, rd, rs1, rs2 } => Some((
            RmwOp::Reg { op, rs2 },
            rd,
            rs1,
            rs1 == lrd || rs2 == lrd,
            op_exec_cost(cost, op),
        )),
        Inst::OpImm { op, rd, rs1, imm } => {
            Some((RmwOp::Imm { op, imm }, rd, rs1, rs1 == lrd, alu))
        }
        _ => None,
    }
}

fn fuse(cost: &CostConfig, start: u64, insts: &[(Inst, u32)]) -> Vec<BlockOp> {
    let alu = cost.fetch_cycles + cost.alu_cycles;
    let mem_base = cost.fetch_cycles;
    let mut ops = Vec::with_capacity(insts.len());
    let mut i = 0;
    while i < insts.len() {
        let pc = start + 4 * i as u64;

        // Three chained shift+xor pairs over one state register: the full
        // xorshift round. Matched before the generic pair so the whole RNG
        // chain runs in host registers.
        if i + 5 < insts.len() {
            let pair = |j: usize| -> Option<(XReg, XReg, bool, u32)> {
                if let (
                    Inst::OpImm {
                        op: sop,
                        rd: srd,
                        rs1: srs1,
                        imm: simm,
                    },
                    Inst::Op {
                        op: AluOp::Xor,
                        rd: xrd,
                        rs1: xrs1,
                        rs2: xrs2,
                    },
                ) = (insts[j].0, insts[j + 1].0)
                {
                    let left = match sop {
                        AluImmOp::Slli => true,
                        AluImmOp::Srli => false,
                        _ => return None,
                    };
                    // xor is commutative, so either operand order works.
                    let feeds = (xrs1 == xrd && xrs2 == srd) || (xrs1 == srd && xrs2 == xrd);
                    // x0 would silently zero a forwarded value; refuse.
                    if feeds && srs1 == xrd && srd != xrd && srd != XReg::ZERO && xrd != XReg::ZERO
                    {
                        return Some((xrd, srd, left, (simm as u32) & 0x3F));
                    }
                }
                None
            };
            if let (Some(p0), Some(p1), Some(p2)) = (pair(i), pair(i + 2), pair(i + 4)) {
                if p0.0 == p1.0 && p1.0 == p2.0 {
                    ops.push(BlockOp::XorShift3 {
                        s: p0.0,
                        t: [p0.1, p1.1, p2.1],
                        left: [p0.2, p1.2, p2.2],
                        shamt: [p0.3, p1.3, p2.3],
                        cost: alu,
                    });
                    i += 6;
                    continue;
                }
            }
        }

        // Six-instruction indexed read-modify-write: index ALU op, scale
        // (`slli`), base add, then a load/op/store triad on the computed
        // address — the table-update idiom of both GUPS and IS rank.
        if i + 5 < insts.len() {
            let head = rmw_parts(cost, alu, insts[i].0, XReg::ZERO)
                .map(|(idx, rd, rs1, _, c)| (idx, rd, rs1, c));
            if let (
                Some((idx, idx_rd, idx_rs1, idx_cost)),
                Inst::OpImm {
                    op: AluImmOp::Slli,
                    rd: sh_rd,
                    rs1: sh_rs1,
                    imm: sh_imm,
                },
                Inst::Op {
                    op: AluOp::Add,
                    rd: add_rd,
                    rs1: add_rs1,
                    rs2: add_rs2,
                },
                Inst::Load {
                    width: lw,
                    rd: lrd,
                    rs1: lrs1,
                    imm: limm,
                },
                mid,
                Inst::Store {
                    width: sw,
                    rs1: srs1,
                    rs2: srs2,
                    imm: simm,
                },
            ) = (
                head,
                insts[i + 1].0,
                insts[i + 2].0,
                insts[i + 3].0,
                insts[i + 4].0,
                insts[i + 5].0,
            ) {
                if let Some((rmw, ord, ors1, consumes_load, op_cost)) =
                    rmw_parts(cost, alu, mid, lrd)
                {
                    // Every forwarded intermediate must live in a real
                    // register — x0 would silently zero it.
                    let no_zero = idx_rd != XReg::ZERO
                        && sh_rd != XReg::ZERO
                        && add_rd != XReg::ZERO
                        && lrd != XReg::ZERO
                        && ord != XReg::ZERO;
                    let feeds = no_zero
                        && sh_rs1 == idx_rd
                        && (add_rs1 == sh_rd || add_rs2 == sh_rd)
                        && lrs1 == add_rd;
                    // Same exactness guards as the bare triad: the computed
                    // address register must survive load and op.
                    let base_preserved = lrd != lrs1 && ord != lrs1;
                    let same_slot = srs1 == lrs1 && simm == limm && srs2 == ord;
                    if feeds && consumes_load && base_preserved && same_slot {
                        ops.push(BlockOp::IdxRmw {
                            idx,
                            idx_rd,
                            idx_rs1,
                            idx_cost,
                            shamt: (sh_imm as u32) & 0x3F,
                            sh_rd,
                            sh_rs1,
                            add_rd,
                            add_rs1,
                            add_rs2,
                            lw,
                            lrd,
                            imm: limm as i64,
                            rmw,
                            ord,
                            ors1,
                            op_cost,
                            sw,
                            srs2,
                            alu,
                            mem_base,
                        });
                        i += 6;
                        continue;
                    }
                }
            }
        }

        // load / op / store read-modify-write triad; the middle op may be
        // register-register (GUPS `xor`) or register-immediate (IS `addi`).
        if i + 2 < insts.len() {
            if let (
                Inst::Load {
                    width: lw,
                    rd: lrd,
                    rs1: lrs1,
                    imm: limm,
                },
                mid,
                Inst::Store {
                    width: sw,
                    rs1: srs1,
                    rs2: srs2,
                    imm: simm,
                },
            ) = (insts[i].0, insts[i + 1].0, insts[i + 2].0)
            {
                if let Some((rmw, ord, ors1, consumes_load, op_cost)) =
                    rmw_parts(cost, alu, mid, lrd)
                {
                    // The base register must survive all three components so
                    // the effective address can be computed once.
                    let base_preserved = lrd != lrs1 && ord != lrs1;
                    let same_slot = srs1 == lrs1 && simm == limm && srs2 == ord;
                    if consumes_load && base_preserved && same_slot {
                        ops.push(BlockOp::LoadOpStore {
                            lw,
                            lrd,
                            base_reg: lrs1,
                            imm: limm as i64,
                            rmw,
                            ord,
                            ors1,
                            op_cost,
                            sw,
                            srs2,
                            mem_base,
                        });
                        i += 3;
                        continue;
                    }
                }
            }
        }

        // Register-immediate op ; addi ; branch reading the addi's result —
        // the "bump pointer, decrement counter, loop" tail of streaming
        // kernels (IS ranking and key generation both end this way).
        if i + 2 < insts.len() {
            if let (
                Inst::OpImm {
                    op: p_op,
                    rd: p_rd,
                    rs1: p_rs1,
                    imm: p_imm,
                },
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    rd: ard,
                    rs1: ars1,
                    imm: aimm,
                },
                Inst::Branch {
                    cond,
                    rs1: brs1,
                    rs2: brs2,
                    offset,
                },
            ) = (insts[i].0, insts[i + 1].0, insts[i + 2].0)
            {
                if brs1 == ard || brs2 == ard {
                    let branch_pc = pc + 8;
                    ops.push(BlockOp::Addi2Branch {
                        p_op,
                        p_rd,
                        p_rs1,
                        p_imm,
                        ard,
                        ars1,
                        aimm,
                        cond,
                        brs1,
                        brs2,
                        taken: branch_pc.wrapping_add(offset as i64 as u64),
                        cost: alu,
                    });
                    i += 3;
                    continue;
                }
            }
        }

        if i + 1 < insts.len() {
            let (a, b) = (insts[i].0, insts[i + 1].0);

            // lui rd, hi ; addi rd, rd, lo — constant/address materialisation.
            if let (
                Inst::Lui { rd, imm20 },
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    rd: ard,
                    rs1: ars1,
                    imm,
                },
            ) = (a, b)
            {
                if ard == rd && ars1 == rd {
                    let hi = ((imm20 as i64) << 12) as u64;
                    ops.push(BlockOp::Li {
                        rd,
                        hi,
                        value: eval_op_imm(AluImmOp::Addi, hi, imm),
                        cost: alu,
                    });
                    i += 2;
                    continue;
                }
            }

            // slli/srli t, s, k ; xor consuming t — the xorshift step.
            if let (
                Inst::OpImm {
                    op: sop @ (AluImmOp::Slli | AluImmOp::Srli),
                    rd: srd,
                    rs1: srs1,
                    imm: simm,
                },
                Inst::Op {
                    op: AluOp::Xor,
                    rd: xrd,
                    rs1: xrs1,
                    rs2: xrs2,
                },
            ) = (a, b)
            {
                if xrs1 == srd || xrs2 == srd {
                    ops.push(BlockOp::ShiftXor {
                        left: matches!(sop, AluImmOp::Slli),
                        // Same masking as `eval_op` for Sll/Srl.
                        shamt: (simm as u32) & 0x3F,
                        srd,
                        srs1,
                        xrd,
                        xrs1,
                        xrs2,
                        cost: alu,
                    });
                    i += 2;
                    continue;
                }
            }

            // addi ; branch reading its result — counted-loop back-edge.
            if let (
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    rd: ard,
                    rs1: ars1,
                    imm: aimm,
                },
                Inst::Branch {
                    cond,
                    rs1: brs1,
                    rs2: brs2,
                    offset,
                },
            ) = (a, b)
            {
                if brs1 == ard || brs2 == ard {
                    let branch_pc = pc + 4;
                    ops.push(BlockOp::AddiBranch {
                        ard,
                        ars1,
                        aimm,
                        cond,
                        brs1,
                        brs2,
                        taken: branch_pc.wrapping_add(offset as i64 as u64),
                        cost: alu,
                    });
                    i += 2;
                    continue;
                }
            }

            // store ; register-immediate op — the streaming post-increment
            // idiom (`sw`/`addi`). Skipped when the following instruction
            // is a branch, which pairs more profitably as a back-edge.
            if let (
                Inst::Store {
                    width,
                    rs1,
                    rs2,
                    imm,
                },
                Inst::OpImm {
                    op: p_op,
                    rd: p_rd,
                    rs1: p_rs1,
                    imm: p_imm,
                },
            ) = (a, b)
            {
                let next_is_branch = matches!(insts.get(i + 2), Some((Inst::Branch { .. }, _)));
                if !next_is_branch {
                    ops.push(BlockOp::StoreInc {
                        width,
                        rs1,
                        rs2,
                        imm: imm as i64,
                        base: mem_base,
                        p_op,
                        p_rd,
                        p_rs1,
                        p_imm,
                        p_cost: alu,
                    });
                    i += 2;
                    continue;
                }
            }

            // eaddie ; remote load addressed through the just-written e-reg.
            if let (Inst::Eaddie { ext, rs1, imm }, second) = (a, b) {
                let feeds_load = match second {
                    Inst::ELoad { rs1: lrs1, .. } => EReg::paired_with(lrs1) == ext,
                    Inst::ERLoad { ext2, .. } => ext2 == ext,
                    _ => false,
                };
                if feeds_load {
                    ops.push(BlockOp::EaddiePair {
                        ext,
                        rs1,
                        imm,
                        cost: alu,
                        inst: second,
                        word: insts[i + 1].1,
                    });
                    i += 2;
                    continue;
                }
            }
        }

        // Specialised singles; the rest run through the stepper's executor.
        let (inst, word) = insts[i];
        ops.push(match inst {
            Inst::Lui { rd, imm20 } => BlockOp::Lui {
                rd,
                value: ((imm20 as i64) << 12) as u64,
                cost: alu,
            },
            Inst::Auipc { rd, imm20 } => BlockOp::Auipc {
                rd,
                value: pc.wrapping_add(((imm20 as i64) << 12) as u64),
                cost: alu,
            },
            Inst::OpImm { op, rd, rs1, imm } => BlockOp::OpImm {
                op,
                rd,
                rs1,
                imm,
                cost: alu,
            },
            Inst::Op { op, rd, rs1, rs2 } => BlockOp::Op {
                op,
                rd,
                rs1,
                rs2,
                cost: op_exec_cost(cost, op),
            },
            Inst::Load {
                width,
                rd,
                rs1,
                imm,
            } => BlockOp::Load {
                width,
                rd,
                rs1,
                imm: imm as i64,
                base: mem_base,
            },
            Inst::Store {
                width,
                rs1,
                rs2,
                imm,
            } => BlockOp::Store {
                width,
                rs1,
                rs2,
                imm: imm as i64,
                base: mem_base,
            },
            Inst::Jal { rd, offset } => BlockOp::Jal {
                rd,
                target: pc.wrapping_add(offset as i64 as u64),
                cost: alu,
            },
            Inst::Jalr { rd, rs1, imm } => BlockOp::Jalr {
                rd,
                rs1,
                imm: imm as i64,
                cost: alu,
            },
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => BlockOp::Branch {
                cond,
                rs1,
                rs2,
                taken: pc.wrapping_add(offset as i64 as u64),
                cost: alu,
            },
            other => BlockOp::Generic { inst: other, word },
        });
        i += 1;
    }
    ops
}

/// Execute `block` on hart `pe` until it exits (control transfer, fall
/// through, environment call), the scheduling horizon `limit` is reached, a
/// store invalidates translated code, or a fault occurs. A control transfer
/// back to the block's own start restarts it in place — the hot-loop fast
/// path that skips the cache lookup entirely.
fn exec_block(m: &mut Machine, pe: usize, block: &Block, limit: u64) -> Result<(), SimFault> {
    // Hoist the hart into a stack local for the whole block: pc, cycles,
    // instret and both register files then live outside the `harts` vec,
    // so the per-component commits compile to plain register/stack traffic
    // with no bounds checks. A zeroed placeholder sits in the vec
    // meanwhile; nothing on the block path reads `harts` except
    // `exec_inst`, around which the real hart is swapped back in.
    let mut h = std::mem::replace(&mut m.harts[pe], Hart::new(0));
    let r = loop {
        // When one full pass has a statically known total cost and the
        // scheduling budget strictly covers it, no per-component horizon
        // check can fire — take the fast pass, which also keeps no per-op
        // counters (they are reconstructed from the block's prefix table).
        let fast = match block.static_cost {
            Some(sc) => limit.saturating_sub(h.cycles) > sc,
            None => false,
        };
        if !fast {
            break exec_ops(m, pe, block, limit, &mut h);
        }
        match exec_ops_fast(m, pe, block, limit, &mut h) {
            // The fast pass looped back to the block start but can no
            // longer pre-pay a whole pass: re-enter with checks on.
            Ok(true) => continue,
            Ok(false) => break Ok(()),
            Err(f) => break Err(f),
        }
    };
    m.harts[pe] = h;
    r
}

/// The checked pass over a block's ops: per-component architectural
/// counters and a scheduling-horizon test before every component, so a
/// hart never runs past `limit`. Handles every op kind, including
/// `Generic`/`EaddiePair` (which re-enter the stepper). Returns on any
/// block exit: horizon reached, control left the block, fault, or
/// self-modifying code.
fn exec_ops(
    m: &mut Machine,
    pe: usize,
    block: &Block,
    limit: u64,
    h: &mut Hart,
) -> Result<(), SimFault> {
    // The functional cost preset can never charge for an access, so the
    // model call is skipped wholesale on the hottest paths.
    let free = m.mem_model_free;
    let ops = block.ops.as_slice();
    // Architectural counters live in plain locals so the hot loop keeps
    // them in host registers; `commit!` flushes them to the hart at every
    // exit (and around `exec_inst`, which operates on the hart directly).
    let mut pc = h.pc;
    let mut cycles = h.cycles;
    let mut instret = h.instret;
    macro_rules! commit {
        () => {
            h.pc = pc;
            h.cycles = cycles;
            h.instret = instret;
        };
    }
    macro_rules! reload {
        () => {
            pc = h.pc;
            cycles = h.cycles;
            instret = h.instret;
        };
    }
    let mut i = 0;
    // After a control transfer: loop straight back to the block start (the
    // hot-loop path, no cache lookup) when the budget still allows;
    // otherwise exit.
    macro_rules! restart_or_exit {
        () => {
            if pc == block.start && cycles < limit {
                i = 0;
                continue;
            }
            commit!();
            return Ok(());
        };
    }
    loop {
        if cycles >= limit {
            commit!();
            return Ok(());
        }
        let Some(op) = ops.get(i) else {
            // Fell off the end of a block capped by MAX_BLOCK_INSTS or an
            // undecodable word; pc already points at the next instruction.
            commit!();
            return Ok(());
        };
        match op {
            BlockOp::Lui { rd, value, cost } => {
                h.write_x(*rd, *value);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::Auipc { rd, value, cost } => {
                h.write_x(*rd, *value);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::OpImm {
                op,
                rd,
                rs1,
                imm,
                cost,
            } => {
                let v = eval_op_imm(*op, h.read_x(*rs1), *imm);
                h.write_x(*rd, v);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::Op {
                op,
                rd,
                rs1,
                rs2,
                cost,
            } => {
                let v = eval_op(*op, h.read_x(*rs1), h.read_x(*rs2));
                h.write_x(*rd, v);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::Load {
                width,
                rd,
                rs1,
                imm,
                base,
            } => {
                let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                let cost = base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let v = match Machine::load_value(&m.mems[pe], *width, addr) {
                    Ok(v) => v,
                    Err(e) => {
                        commit!();
                        return Err(SimFault::Memory(e));
                    }
                };
                h.write_x(*rd, v);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::Store {
                width,
                rs1,
                rs2,
                imm,
                base,
            } => {
                let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                let cost = base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let v = h.read_x(*rs2);
                let bytes = width.bytes();
                if let Err(e) = Machine::store_value(&mut m.mems[pe], *width, addr, v) {
                    commit!();
                    return Err(SimFault::Memory(e));
                }
                pc += 4;
                cycles += cost;
                instret += 1;
                m.note_store(pe, addr, bytes);
                if m.code_dirty {
                    m.code_dirty = false;
                    commit!();
                    return Ok(());
                }
            }
            BlockOp::Jal { rd, target, cost } => {
                if *target & 3 != 0 {
                    commit!();
                    return Err(SimFault::InstructionMisaligned {
                        pc,
                        target: *target,
                    });
                }
                let link = pc.wrapping_add(4);
                h.write_x(*rd, link);
                pc = *target;
                cycles += cost;
                instret += 1;
                restart_or_exit!();
            }
            BlockOp::Jalr { rd, rs1, imm, cost } => {
                let target = h.read_x(*rs1).wrapping_add(*imm as u64) & !1;
                if target & 3 != 0 {
                    commit!();
                    return Err(SimFault::InstructionMisaligned { pc, target });
                }
                let link = pc.wrapping_add(4);
                h.write_x(*rd, link);
                pc = target;
                cycles += cost;
                instret += 1;
                restart_or_exit!();
            }
            BlockOp::Branch {
                cond,
                rs1,
                rs2,
                taken,
                cost,
            } => {
                if branch_taken(*cond, h.read_x(*rs1), h.read_x(*rs2)) {
                    if *taken & 3 != 0 {
                        commit!();
                        return Err(SimFault::InstructionMisaligned { pc, target: *taken });
                    }
                    pc = *taken;
                } else {
                    pc += 4;
                }
                cycles += cost;
                instret += 1;
                restart_or_exit!();
            }
            BlockOp::Li {
                rd,
                hi,
                value,
                cost,
            } => {
                h.write_x(*rd, *hi);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                h.write_x(*rd, *value);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::ShiftXor {
                left,
                shamt,
                srd,
                srs1,
                xrd,
                xrs1,
                xrs2,
                cost,
            } => {
                let s = h.read_x(*srs1);
                let sh = if *left {
                    s.wrapping_shl(*shamt)
                } else {
                    s.wrapping_shr(*shamt)
                };
                h.write_x(*srd, sh);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Forward the shifted value in a host register instead of
                // re-reading it through the architectural file.
                let fwd = *srd != XReg::ZERO;
                let a = if fwd && *xrs1 == *srd {
                    sh
                } else {
                    h.read_x(*xrs1)
                };
                let b = if fwd && *xrs2 == *srd {
                    sh
                } else {
                    h.read_x(*xrs2)
                };
                let v = a ^ b;
                h.write_x(*xrd, v);
                pc += 4;
                cycles += cost;
                instret += 1;
            }
            BlockOp::LoadOpStore {
                lw,
                lrd,
                base_reg,
                imm,
                rmw,
                ord,
                ors1,
                op_cost,
                sw,
                srs2,
                mem_base,
            } => {
                // Load component.
                let addr = h.read_x(*base_reg).wrapping_add(*imm as u64);
                let cost = mem_base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let v = match Machine::load_value(&m.mems[pe], *lw, addr) {
                    Ok(v) => v,
                    Err(e) => {
                        commit!();
                        return Err(SimFault::Memory(e));
                    }
                };
                h.write_x(*lrd, v);
                let lv = v;
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // ALU component — the loaded value is forwarded host-side;
                // the architectural write above already happened, so a
                // non-forwarded operand reads the correct file state.
                let fwd = *lrd != XReg::ZERO;
                let v = match rmw {
                    RmwOp::Reg { op, rs2 } => {
                        let a = if fwd && *ors1 == *lrd {
                            lv
                        } else {
                            h.read_x(*ors1)
                        };
                        let b = if fwd && *rs2 == *lrd {
                            lv
                        } else {
                            h.read_x(*rs2)
                        };
                        eval_op(*op, a, b)
                    }
                    RmwOp::Imm { op, imm } => {
                        let a = if fwd && *ors1 == *lrd {
                            lv
                        } else {
                            h.read_x(*ors1)
                        };
                        eval_op_imm(*op, a, *imm)
                    }
                };
                h.write_x(*ord, v);
                let rv = v;
                pc += 4;
                cycles += op_cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Store component — fusion guards keep `base_reg` intact, so
                // the effective address is the one computed above.
                let cost = mem_base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let sv = if *ord != XReg::ZERO && *srs2 == *ord {
                    rv
                } else {
                    h.read_x(*srs2)
                };
                let bytes = sw.bytes();
                if let Err(e) = Machine::store_value(&mut m.mems[pe], *sw, addr, sv) {
                    commit!();
                    return Err(SimFault::Memory(e));
                }
                pc += 4;
                cycles += cost;
                instret += 1;
                m.note_store(pe, addr, bytes);
                if m.code_dirty {
                    m.code_dirty = false;
                    commit!();
                    return Ok(());
                }
            }
            BlockOp::XorShift3 {
                s,
                t,
                left,
                shamt,
                cost,
            } => {
                let mut sv = h.read_x(*s);
                for k in 0..3 {
                    let tv = if left[k] {
                        sv.wrapping_shl(shamt[k])
                    } else {
                        sv.wrapping_shr(shamt[k])
                    };
                    h.write_x(t[k], tv);
                    pc += 4;
                    cycles += cost;
                    instret += 1;
                    if cycles >= limit {
                        commit!();
                        return Ok(());
                    }
                    sv ^= tv;
                    h.write_x(*s, sv);
                    pc += 4;
                    cycles += cost;
                    instret += 1;
                    if k < 2 && cycles >= limit {
                        commit!();
                        return Ok(());
                    }
                }
            }
            BlockOp::IdxRmw {
                idx,
                idx_rd,
                idx_rs1,
                idx_cost,
                shamt,
                sh_rd,
                sh_rs1,
                add_rd,
                add_rs1,
                add_rs2,
                lw,
                lrd,
                imm,
                rmw,
                ord,
                ors1,
                op_cost,
                sw,
                srs2,
                alu,
                mem_base,
            } => {
                // Index component. Fusion guards (`no_zero` and the feeds
                // chain) let every intermediate forward host-side while the
                // architectural writes still all happen.
                let vi = match idx {
                    RmwOp::Reg { op, rs2 } => eval_op(*op, h.read_x(*idx_rs1), h.read_x(*rs2)),
                    RmwOp::Imm { op, imm } => eval_op_imm(*op, h.read_x(*idx_rs1), *imm),
                };
                h.write_x(*idx_rd, vi);
                pc += 4;
                cycles += idx_cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Scale component — `sh_rs1 == idx_rd` by the feeds guard.
                debug_assert_eq!(*sh_rs1, *idx_rd);
                let vs = vi.wrapping_shl(*shamt);
                h.write_x(*sh_rd, vs);
                pc += 4;
                cycles += alu;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Base-add component.
                let a = if *add_rs1 == *sh_rd {
                    vs
                } else {
                    h.read_x(*add_rs1)
                };
                let b = if *add_rs2 == *sh_rd {
                    vs
                } else {
                    h.read_x(*add_rs2)
                };
                let va = a.wrapping_add(b);
                h.write_x(*add_rd, va);
                pc += 4;
                cycles += alu;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Load component — the base is `add_rd` by the feeds guard.
                let addr = va.wrapping_add(*imm as u64);
                let cost = mem_base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let v = match Machine::load_value(&m.mems[pe], *lw, addr) {
                    Ok(v) => v,
                    Err(e) => {
                        commit!();
                        return Err(SimFault::Memory(e));
                    }
                };
                h.write_x(*lrd, v);
                let lv = v;
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // ALU component — `lrd` is non-zero by the fusion guard.
                let v = match rmw {
                    RmwOp::Reg { op, rs2 } => {
                        let a = if *ors1 == *lrd { lv } else { h.read_x(*ors1) };
                        let b = if *rs2 == *lrd { lv } else { h.read_x(*rs2) };
                        eval_op(*op, a, b)
                    }
                    RmwOp::Imm { op, imm } => {
                        let a = if *ors1 == *lrd { lv } else { h.read_x(*ors1) };
                        eval_op_imm(*op, a, *imm)
                    }
                };
                h.write_x(*ord, v);
                let rv = v;
                pc += 4;
                cycles += op_cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Store component — the guards keep the address register
                // intact across load and op.
                let cost = mem_base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let sv = if *srs2 == *ord { rv } else { h.read_x(*srs2) };
                let bytes = sw.bytes();
                if let Err(e) = Machine::store_value(&mut m.mems[pe], *sw, addr, sv) {
                    commit!();
                    return Err(SimFault::Memory(e));
                }
                pc += 4;
                cycles += cost;
                instret += 1;
                m.note_store(pe, addr, bytes);
                if m.code_dirty {
                    m.code_dirty = false;
                    commit!();
                    return Ok(());
                }
            }
            BlockOp::StoreInc {
                width,
                rs1,
                rs2,
                imm,
                base,
                p_op,
                p_rd,
                p_rs1,
                p_imm,
                p_cost,
            } => {
                let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                let cost = base
                    + if free {
                        0
                    } else {
                        m.local_access_cost(pe, addr)
                    };
                let v = h.read_x(*rs2);
                let bytes = width.bytes();
                if let Err(e) = Machine::store_value(&mut m.mems[pe], *width, addr, v) {
                    commit!();
                    return Err(SimFault::Memory(e));
                }
                pc += 4;
                cycles += cost;
                instret += 1;
                m.note_store(pe, addr, bytes);
                if m.code_dirty {
                    m.code_dirty = false;
                    commit!();
                    return Ok(());
                }
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Post-increment component.
                let v = eval_op_imm(*p_op, h.read_x(*p_rs1), *p_imm);
                h.write_x(*p_rd, v);
                pc += 4;
                cycles += p_cost;
                instret += 1;
            }
            BlockOp::Addi2Branch {
                p_op,
                p_rd,
                p_rs1,
                p_imm,
                ard,
                ars1,
                aimm,
                cond,
                brs1,
                brs2,
                taken,
                cost,
            } => {
                let pv = eval_op_imm(*p_op, h.read_x(*p_rs1), *p_imm);
                h.write_x(*p_rd, pv);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                let pf = *p_rd != XReg::ZERO;
                let base = if pf && *ars1 == *p_rd {
                    pv
                } else {
                    h.read_x(*ars1)
                };
                let av = base.wrapping_add(*aimm as i64 as u64);
                h.write_x(*ard, av);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                // Branch operands: the later architectural write wins, so
                // test `ard` before `p_rd`.
                let af = *ard != XReg::ZERO;
                let a = if af && *brs1 == *ard {
                    av
                } else if pf && *brs1 == *p_rd {
                    pv
                } else {
                    h.read_x(*brs1)
                };
                let b = if af && *brs2 == *ard {
                    av
                } else if pf && *brs2 == *p_rd {
                    pv
                } else {
                    h.read_x(*brs2)
                };
                if branch_taken(*cond, a, b) {
                    if *taken & 3 != 0 {
                        commit!();
                        return Err(SimFault::InstructionMisaligned { pc, target: *taken });
                    }
                    pc = *taken;
                } else {
                    pc += 4;
                }
                cycles += cost;
                instret += 1;
                restart_or_exit!();
            }
            BlockOp::AddiBranch {
                ard,
                ars1,
                aimm,
                cond,
                brs1,
                brs2,
                taken,
                cost,
            } => {
                let v = h.read_x(*ars1).wrapping_add(*aimm as i64 as u64);
                h.write_x(*ard, v);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                let fwd = *ard != XReg::ZERO;
                let a = if fwd && *brs1 == *ard {
                    v
                } else {
                    h.read_x(*brs1)
                };
                let b = if fwd && *brs2 == *ard {
                    v
                } else {
                    h.read_x(*brs2)
                };
                if branch_taken(*cond, a, b) {
                    if *taken & 3 != 0 {
                        commit!();
                        return Err(SimFault::InstructionMisaligned { pc, target: *taken });
                    }
                    pc = *taken;
                } else {
                    pc += 4;
                }
                cycles += cost;
                instret += 1;
                restart_or_exit!();
            }
            BlockOp::EaddiePair {
                ext,
                rs1,
                imm,
                cost,
                inst,
                word,
            } => {
                let v = h.read_x(*rs1).wrapping_add(*imm as i64 as u64);
                h.write_e(*ext, v);
                pc += 4;
                cycles += cost;
                instret += 1;
                if cycles >= limit {
                    commit!();
                    return Ok(());
                }
                commit!();
                std::mem::swap(&mut m.harts[pe], h);
                let r = m.exec_inst(pe, pc, *word, *inst);
                std::mem::swap(&mut m.harts[pe], h);
                reload!();
                r?;
            }
            BlockOp::Generic { inst, word } => {
                commit!();
                std::mem::swap(&mut m.harts[pe], h);
                let r = m.exec_inst(pe, pc, *word, *inst);
                std::mem::swap(&mut m.harts[pe], h);
                reload!();
                r?;
                if m.code_dirty {
                    m.code_dirty = false;
                    return Ok(());
                }
                // An environment call may have halted this hart, parked it
                // at a barrier, or (by releasing a barrier) moved *other*
                // harts — in every such case the scheduling horizon is
                // stale, so hand control back. `ends_block` guarantees
                // ecall/ebreak are a block's final op, so falling out below
                // covers the released-and-still-running case too.
                if h.state != HartState::Running {
                    return Ok(());
                }
            }
        }
        i += 1;
    }
}

/// The fast pass: zero per-op counter bookkeeping. Runs only when the
/// block's full-pass cost is statically known ([`Block::static_cost`]) and
/// the caller has pre-paid it against the scheduling budget, so no horizon
/// check can fire mid-pass. The hot loop touches nothing but architectural
/// register and memory state; exact `pc`/`cycles`/`instret` are
/// reconstructed from the translation-time [`Block::prefix`] table at the
/// points where they become observable — control transfers, faults and
/// self-modifying-code exits. Returns `Ok(true)` when control looped back
/// to the block start but the remaining budget no longer covers a whole
/// pass (the caller re-enters via the checked pass).
fn exec_ops_fast(
    m: &mut Machine,
    pe: usize,
    block: &Block,
    limit: u64,
    h: &mut Hart,
) -> Result<bool, SimFault> {
    let ops = block.ops.as_slice();
    let prefix = block.prefix.as_slice();
    let sc = block
        .static_cost
        .expect("fast pass requires a statically-costed block");
    let start = block.start;
    // The code-range probe is hoisted for the whole call: only this PE's
    // own stores can invalidate its translations while it runs (other
    // harts are frozen and statically-costed blocks contain no ecalls),
    // and the first hit exits immediately.
    let (code_lo, code_hi) = (m.blocks[pe].lo, m.blocks[pe].hi);
    // Pass-base counters: advanced once per control transfer, not per op.
    let mut cycles = h.cycles;
    let mut instret = h.instret;
    // Commit counters as of component boundaries inside op `$i` (cold
    // paths only: faults and self-modifying-code exits).
    macro_rules! commit_at {
        ($i:expr, $pc_extra:expr, $cyc_extra:expr, $ret_extra:expr) => {
            h.pc = start + prefix[$i].pc_off + $pc_extra;
            h.cycles = cycles + prefix[$i].cycles + $cyc_extra;
            h.instret = instret + prefix[$i].instret + $ret_extra;
        };
    }
    // A control transfer at op `$i`: charge the op's own cost on top of
    // the prefix totals, then either loop straight back to the block start
    // (when another whole pass is still pre-paid) or commit and leave.
    macro_rules! take {
        ($lbl:lifetime, $i:expr, $cyc:expr, $ret:expr, $target:expr) => {
            cycles += prefix[$i].cycles + $cyc;
            instret += prefix[$i].instret + $ret;
            if $target == start {
                if limit.saturating_sub(cycles) > sc {
                    continue $lbl;
                }
                h.pc = start;
                h.cycles = cycles;
                h.instret = instret;
                return Ok(true);
            }
            h.pc = $target;
            h.cycles = cycles;
            h.instret = instret;
            return Ok(false);
        };
    }
    'pass: loop {
        for (i, op) in ops.iter().enumerate() {
            match op {
                BlockOp::Lui { rd, value, .. } | BlockOp::Auipc { rd, value, .. } => {
                    h.write_x(*rd, *value);
                }
                BlockOp::OpImm {
                    op, rd, rs1, imm, ..
                } => {
                    let v = eval_op_imm(*op, h.read_x(*rs1), *imm);
                    h.write_x(*rd, v);
                }
                BlockOp::Op {
                    op, rd, rs1, rs2, ..
                } => {
                    let v = eval_op(*op, h.read_x(*rs1), h.read_x(*rs2));
                    h.write_x(*rd, v);
                }
                BlockOp::Load {
                    width,
                    rd,
                    rs1,
                    imm,
                    ..
                } => {
                    let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                    match Machine::load_value(&m.mems[pe], *width, addr) {
                        Ok(v) => h.write_x(*rd, v),
                        Err(e) => {
                            commit_at!(i, 0, 0, 0);
                            return Err(SimFault::Memory(e));
                        }
                    }
                }
                BlockOp::Store {
                    width,
                    rs1,
                    rs2,
                    imm,
                    ..
                } => {
                    let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                    let v = h.read_x(*rs2);
                    let bytes = width.bytes();
                    if let Err(e) = Machine::store_value(&mut m.mems[pe], *width, addr, v) {
                        commit_at!(i, 0, 0, 0);
                        return Err(SimFault::Memory(e));
                    }
                    if addr < code_hi && addr + bytes as u64 > code_lo {
                        m.note_store(pe, addr, bytes);
                        m.code_dirty = false;
                        commit_at!(i + 1, 0, 0, 0);
                        return Ok(false);
                    }
                }
                BlockOp::Jal { rd, target, cost } => {
                    if *target & 3 != 0 {
                        commit_at!(i, 0, 0, 0);
                        return Err(SimFault::InstructionMisaligned {
                            pc: start + prefix[i].pc_off,
                            target: *target,
                        });
                    }
                    let link = start + prefix[i].pc_off + 4;
                    h.write_x(*rd, link);
                    take!('pass, i, *cost, 1, *target);
                }
                BlockOp::Jalr { rd, rs1, imm, cost } => {
                    let target = h.read_x(*rs1).wrapping_add(*imm as u64) & !1;
                    if target & 3 != 0 {
                        commit_at!(i, 0, 0, 0);
                        return Err(SimFault::InstructionMisaligned {
                            pc: start + prefix[i].pc_off,
                            target,
                        });
                    }
                    let link = start + prefix[i].pc_off + 4;
                    h.write_x(*rd, link);
                    take!('pass, i, *cost, 1, target);
                }
                BlockOp::Branch {
                    cond,
                    rs1,
                    rs2,
                    taken,
                    cost,
                } => {
                    let target = if branch_taken(*cond, h.read_x(*rs1), h.read_x(*rs2)) {
                        if *taken & 3 != 0 {
                            commit_at!(i, 0, 0, 0);
                            return Err(SimFault::InstructionMisaligned {
                                pc: start + prefix[i].pc_off,
                                target: *taken,
                            });
                        }
                        *taken
                    } else {
                        start + prefix[i].pc_off + 4
                    };
                    take!('pass, i, *cost, 1, target);
                }
                // No fault is possible between the two halves, so only the
                // final constant is observable.
                BlockOp::Li { rd, value, .. } => {
                    h.write_x(*rd, *value);
                }
                BlockOp::ShiftXor {
                    left,
                    shamt,
                    srd,
                    srs1,
                    xrd,
                    xrs1,
                    xrs2,
                    ..
                } => {
                    let s = h.read_x(*srs1);
                    let sh = if *left {
                        s.wrapping_shl(*shamt)
                    } else {
                        s.wrapping_shr(*shamt)
                    };
                    h.write_x(*srd, sh);
                    let fwd = *srd != XReg::ZERO;
                    let a = if fwd && *xrs1 == *srd {
                        sh
                    } else {
                        h.read_x(*xrs1)
                    };
                    let b = if fwd && *xrs2 == *srd {
                        sh
                    } else {
                        h.read_x(*xrs2)
                    };
                    let v = a ^ b;
                    h.write_x(*xrd, v);
                }
                BlockOp::LoadOpStore {
                    lw,
                    lrd,
                    base_reg,
                    imm,
                    rmw,
                    ord,
                    ors1,
                    op_cost,
                    sw,
                    srs2,
                    mem_base,
                } => {
                    let addr = h.read_x(*base_reg).wrapping_add(*imm as u64);
                    let v = match Machine::load_value(&m.mems[pe], *lw, addr) {
                        Ok(v) => v,
                        Err(e) => {
                            commit_at!(i, 0, 0, 0);
                            return Err(SimFault::Memory(e));
                        }
                    };
                    h.write_x(*lrd, v);
                    let lv = v;
                    let fwd = *lrd != XReg::ZERO;
                    let v = match rmw {
                        RmwOp::Reg { op, rs2 } => {
                            let a = if fwd && *ors1 == *lrd {
                                lv
                            } else {
                                h.read_x(*ors1)
                            };
                            let b = if fwd && *rs2 == *lrd {
                                lv
                            } else {
                                h.read_x(*rs2)
                            };
                            eval_op(*op, a, b)
                        }
                        RmwOp::Imm { op, imm } => {
                            let a = if fwd && *ors1 == *lrd {
                                lv
                            } else {
                                h.read_x(*ors1)
                            };
                            eval_op_imm(*op, a, *imm)
                        }
                    };
                    h.write_x(*ord, v);
                    let sv = if *ord != XReg::ZERO && *srs2 == *ord {
                        v
                    } else {
                        h.read_x(*srs2)
                    };
                    let bytes = sw.bytes();
                    if let Err(e) = Machine::store_value(&mut m.mems[pe], *sw, addr, sv) {
                        commit_at!(i, 8, mem_base + op_cost, 2);
                        return Err(SimFault::Memory(e));
                    }
                    if addr < code_hi && addr + bytes as u64 > code_lo {
                        m.note_store(pe, addr, bytes);
                        m.code_dirty = false;
                        commit_at!(i + 1, 0, 0, 0);
                        return Ok(false);
                    }
                }
                BlockOp::XorShift3 {
                    s, t, left, shamt, ..
                } => {
                    // No fault is possible mid-round, so only the final
                    // state write (and each scratch write) is observable.
                    let mut sv = h.read_x(*s);
                    for k in 0..3 {
                        let tv = if left[k] {
                            sv.wrapping_shl(shamt[k])
                        } else {
                            sv.wrapping_shr(shamt[k])
                        };
                        h.write_x(t[k], tv);
                        sv ^= tv;
                    }
                    h.write_x(*s, sv);
                }
                BlockOp::IdxRmw {
                    idx,
                    idx_rd,
                    idx_rs1,
                    idx_cost,
                    shamt,
                    sh_rd,
                    sh_rs1,
                    add_rd,
                    add_rs1,
                    add_rs2,
                    lw,
                    lrd,
                    imm,
                    rmw,
                    ord,
                    ors1,
                    op_cost,
                    sw,
                    srs2,
                    alu,
                    mem_base,
                } => {
                    let vi = match idx {
                        RmwOp::Reg { op, rs2 } => eval_op(*op, h.read_x(*idx_rs1), h.read_x(*rs2)),
                        RmwOp::Imm { op, imm } => eval_op_imm(*op, h.read_x(*idx_rs1), *imm),
                    };
                    h.write_x(*idx_rd, vi);
                    debug_assert_eq!(*sh_rs1, *idx_rd);
                    let vs = vi.wrapping_shl(*shamt);
                    h.write_x(*sh_rd, vs);
                    let a = if *add_rs1 == *sh_rd {
                        vs
                    } else {
                        h.read_x(*add_rs1)
                    };
                    let b = if *add_rs2 == *sh_rd {
                        vs
                    } else {
                        h.read_x(*add_rs2)
                    };
                    let va = a.wrapping_add(b);
                    h.write_x(*add_rd, va);
                    let addr = va.wrapping_add(*imm as u64);
                    let v = match Machine::load_value(&m.mems[pe], *lw, addr) {
                        Ok(v) => v,
                        Err(e) => {
                            commit_at!(i, 12, idx_cost + 2 * alu, 3);
                            return Err(SimFault::Memory(e));
                        }
                    };
                    h.write_x(*lrd, v);
                    let lv = v;
                    let v = match rmw {
                        RmwOp::Reg { op, rs2 } => {
                            let a = if *ors1 == *lrd { lv } else { h.read_x(*ors1) };
                            let b = if *rs2 == *lrd { lv } else { h.read_x(*rs2) };
                            eval_op(*op, a, b)
                        }
                        RmwOp::Imm { op, imm } => {
                            let a = if *ors1 == *lrd { lv } else { h.read_x(*ors1) };
                            eval_op_imm(*op, a, *imm)
                        }
                    };
                    h.write_x(*ord, v);
                    let sv = if *srs2 == *ord { v } else { h.read_x(*srs2) };
                    let bytes = sw.bytes();
                    if let Err(e) = Machine::store_value(&mut m.mems[pe], *sw, addr, sv) {
                        commit_at!(i, 20, idx_cost + 2 * alu + mem_base + op_cost, 5);
                        return Err(SimFault::Memory(e));
                    }
                    if addr < code_hi && addr + bytes as u64 > code_lo {
                        m.note_store(pe, addr, bytes);
                        m.code_dirty = false;
                        commit_at!(i + 1, 0, 0, 0);
                        return Ok(false);
                    }
                }
                BlockOp::StoreInc {
                    width,
                    rs1,
                    rs2,
                    imm,
                    base,
                    p_op,
                    p_rd,
                    p_rs1,
                    p_imm,
                    ..
                } => {
                    let addr = h.read_x(*rs1).wrapping_add(*imm as u64);
                    let v = h.read_x(*rs2);
                    let bytes = width.bytes();
                    if let Err(e) = Machine::store_value(&mut m.mems[pe], *width, addr, v) {
                        commit_at!(i, 0, 0, 0);
                        return Err(SimFault::Memory(e));
                    }
                    if addr < code_hi && addr + bytes as u64 > code_lo {
                        m.note_store(pe, addr, bytes);
                        m.code_dirty = false;
                        commit_at!(i, 4, *base, 1);
                        return Ok(false);
                    }
                    let v = eval_op_imm(*p_op, h.read_x(*p_rs1), *p_imm);
                    h.write_x(*p_rd, v);
                }
                BlockOp::Addi2Branch {
                    p_op,
                    p_rd,
                    p_rs1,
                    p_imm,
                    ard,
                    ars1,
                    aimm,
                    cond,
                    brs1,
                    brs2,
                    taken,
                    cost,
                } => {
                    let pv = eval_op_imm(*p_op, h.read_x(*p_rs1), *p_imm);
                    h.write_x(*p_rd, pv);
                    let pf = *p_rd != XReg::ZERO;
                    let base = if pf && *ars1 == *p_rd {
                        pv
                    } else {
                        h.read_x(*ars1)
                    };
                    let av = base.wrapping_add(*aimm as i64 as u64);
                    h.write_x(*ard, av);
                    // Later architectural write wins: test `ard` first.
                    let af = *ard != XReg::ZERO;
                    let a = if af && *brs1 == *ard {
                        av
                    } else if pf && *brs1 == *p_rd {
                        pv
                    } else {
                        h.read_x(*brs1)
                    };
                    let b = if af && *brs2 == *ard {
                        av
                    } else if pf && *brs2 == *p_rd {
                        pv
                    } else {
                        h.read_x(*brs2)
                    };
                    let target = if branch_taken(*cond, a, b) {
                        if *taken & 3 != 0 {
                            commit_at!(i, 8, 2 * *cost, 2);
                            return Err(SimFault::InstructionMisaligned {
                                pc: start + prefix[i].pc_off + 8,
                                target: *taken,
                            });
                        }
                        *taken
                    } else {
                        start + prefix[i].pc_off + 12
                    };
                    take!('pass, i, 3 * *cost, 3, target);
                }
                BlockOp::AddiBranch {
                    ard,
                    ars1,
                    aimm,
                    cond,
                    brs1,
                    brs2,
                    taken,
                    cost,
                } => {
                    let v = h.read_x(*ars1).wrapping_add(*aimm as i64 as u64);
                    h.write_x(*ard, v);
                    let fwd = *ard != XReg::ZERO;
                    let a = if fwd && *brs1 == *ard {
                        v
                    } else {
                        h.read_x(*brs1)
                    };
                    let b = if fwd && *brs2 == *ard {
                        v
                    } else {
                        h.read_x(*brs2)
                    };
                    let target = if branch_taken(*cond, a, b) {
                        if *taken & 3 != 0 {
                            commit_at!(i, 4, *cost, 1);
                            return Err(SimFault::InstructionMisaligned {
                                pc: start + prefix[i].pc_off + 4,
                                target: *taken,
                            });
                        }
                        *taken
                    } else {
                        start + prefix[i].pc_off + 8
                    };
                    take!('pass, i, 2 * *cost, 2, target);
                }
                BlockOp::EaddiePair { .. } | BlockOp::Generic { .. } => {
                    unreachable!("ops with dynamic cost never appear in statically-costed blocks")
                }
            }
        }
        // Fell off the end of a block capped by MAX_BLOCK_INSTS or an
        // undecodable word: commit full-pass totals and re-dispatch.
        commit_at!(ops.len(), 0, 0, 0);
        return Ok(false);
    }
}

/// The block-translation run loop: scheduling and exit determination are
/// shared with the interpreter ([`Machine::next_runnable`]); only the
/// per-hart execution between scheduling points differs.
pub(crate) fn run_block(m: &mut Machine) -> RunSummary {
    debug_assert_eq!(m.trace_depth, 0, "block engine never runs while tracing");
    let exit = loop {
        let pe = match m.next_runnable() {
            Ok(pe) => pe,
            Err(exit) => break exit,
        };
        if m.harts[pe].cycles >= m.config.max_cycles {
            break RunExit::CycleLimit;
        }

        // Scheduling horizon (see module docs): other harts are frozen
        // while this one executes, so the bound holds for the whole
        // dispatch.
        let mut lo = u64::MAX;
        let mut hi = u64::MAX;
        for (i, h) in m.harts.iter().enumerate() {
            if i == pe || h.state != HartState::Running {
                continue;
            }
            if i < pe {
                lo = lo.min(h.cycles);
            } else {
                hi = hi.min(h.cycles);
            }
        }
        let limit = lo.min(hi.saturating_add(1)).min(m.config.max_cycles);

        let pc = m.harts[pe].pc;
        let block = match m.blocks[pe].get(pc) {
            Some(b) => b,
            None => match translate(m, pe, pc) {
                Some(b) => {
                    let b = Arc::new(b);
                    m.blocks[pe].insert(Arc::clone(&b));
                    b
                }
                None => {
                    // Unfetchable or undecodable first word: a single
                    // interpretive step reproduces the exact fault.
                    if let Err(fault) = m.step(pe) {
                        break RunExit::Fault { pe, fault };
                    }
                    continue;
                }
            },
        };
        if let Err(fault) = exec_block(m, pe, &block, limit) {
            m.harts[pe].state = HartState::Faulted(fault.clone());
            break RunExit::Fault { pe, fault };
        }
    };
    m.summary(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cost::MachineConfig;

    fn machine_with(src: &str) -> Machine {
        let mut m = Machine::new(MachineConfig::test(1));
        let img = assemble(0x1000, src).unwrap();
        m.load_program(0x1000, &img.words);
        m
    }

    #[test]
    fn gups_loop_fuses_to_superinstructions() {
        // The 14-instruction GUPS inner loop collapses to 3 ops:
        // XorShift3 (the full RNG round), IdxRmw (and/slli/add/ld/xor/sd),
        // AddiBranch.
        let m = machine_with(
            "loop:\n slli t0, s1, 13\n xor s1, s1, t0\n srli t0, s1, 7\n\
             xor s1, s1, t0\n slli t0, s1, 17\n xor s1, s1, t0\n\
             and t1, s1, s2\n slli t1, t1, 3\n add t2, s3, t1\n\
             ld t3, 0(t2)\n xor t3, t3, s1\n sd t3, 0(t2)\n\
             addi s0, s0, -1\n bnez s0, loop",
        );
        let b = translate(&m, 0, 0x1000).unwrap();
        assert_eq!(b.end - b.start, 14 * 4);
        assert_eq!(b.ops.len(), 3, "ops: {:?}", b.ops);
        assert!(matches!(
            b.ops[0],
            BlockOp::XorShift3 {
                shamt: [13, 7, 17],
                left: [true, false, true],
                ..
            }
        ));
        assert!(matches!(b.ops[1], BlockOp::IdxRmw { shamt: 3, .. }));
        assert!(matches!(
            b.ops[2],
            BlockOp::AddiBranch { taken: 0x1000, .. }
        ));
    }

    #[test]
    fn is_loops_fuse_to_superinstructions() {
        // IS key generation: the store + pointer bump pair one StoreInc.
        let m = machine_with(
            "gen:\n slli t0, s1, 13\n xor s1, s1, t0\n sw s1, 0(s2)\n\
             addi s2, s2, 4\n addi s0, s0, -1\n bnez s0, gen",
        );
        let b = translate(&m, 0, 0x1000).unwrap();
        assert_eq!(b.ops.len(), 3, "ops: {:?}", b.ops);
        assert!(matches!(b.ops[0], BlockOp::ShiftXor { .. }));
        assert!(matches!(b.ops[1], BlockOp::StoreInc { .. }));
        assert!(matches!(
            b.ops[2],
            BlockOp::AddiBranch { taken: 0x1000, .. }
        ));

        // IS ranking: andi/slli/add/ld/addi/sd is the same indexed
        // read-modify-write shape as the GUPS update (imm index and imm op).
        let m = machine_with(
            "rank:\n lw t1, 0(s2)\n andi t2, t1, 255\n slli t2, t2, 3\n\
             add t2, s3, t2\n ld t3, 0(t2)\n addi t3, t3, 1\n sd t3, 0(t2)\n\
             addi s2, s2, 4\n addi s0, s0, -1\n bnez s0, rank",
        );
        let b = translate(&m, 0, 0x1000).unwrap();
        assert_eq!(b.ops.len(), 3, "ops: {:?}", b.ops);
        assert!(matches!(b.ops[0], BlockOp::Load { .. }));
        assert!(matches!(
            b.ops[1],
            BlockOp::IdxRmw {
                idx: RmwOp::Imm { .. },
                rmw: RmwOp::Imm { .. },
                ..
            }
        ));
        assert!(matches!(
            b.ops[2],
            BlockOp::Addi2Branch { taken: 0x1000, .. }
        ));
    }

    #[test]
    fn li_fusion_precomputes_both_constants() {
        let m = machine_with("lui a0, 0x12345\naddi a0, a0, -273\nret");
        let b = translate(&m, 0, 0x1000).unwrap();
        match b.ops[0] {
            BlockOp::Li { rd, hi, value, .. } => {
                assert_eq!(rd, XReg::A0);
                assert_eq!(hi, 0x12345000);
                assert_eq!(value, 0x12345000u64.wrapping_add((-273i64) as u64));
            }
            ref other => panic!("expected Li, got {other:?}"),
        }
    }

    #[test]
    fn rmw_triad_not_fused_when_load_clobbers_base() {
        // `ld t2, 0(t2)` overwrites the address register: the address would
        // change between load and store, so fusion must refuse.
        let m = machine_with("ld t2, 0(t2)\nxor t2, t2, s1\nsd t2, 0(t2)\nret");
        let b = translate(&m, 0, 0x1000).unwrap();
        assert!(
            !b.ops
                .iter()
                .any(|op| matches!(op, BlockOp::LoadOpStore { .. })),
            "ops: {:?}",
            b.ops
        );
    }

    #[test]
    fn translation_stops_at_block_cap() {
        let mut src = String::new();
        for _ in 0..100 {
            src.push_str("addi a0, a0, 1\n");
        }
        src.push_str("ret\n");
        let m = machine_with(&src);
        let b = translate(&m, 0, 0x1000).unwrap();
        assert_eq!(b.end, 0x1000 + 4 * MAX_BLOCK_INSTS as u64);
    }

    #[test]
    fn cache_overlap_probe_and_range_invalidation() {
        let mut c = BlockCache::new();
        assert!(!c.overlaps(0x1000, 8)); // empty cache: always false
        c.insert(Arc::new(Block {
            start: 0x1000,
            end: 0x1040,
            ops: Vec::new(),
            static_cost: None,
            prefix: Vec::new(),
        }));
        c.insert(Arc::new(Block {
            start: 0x2000,
            end: 0x2010,
            ops: Vec::new(),
            static_cost: None,
            prefix: Vec::new(),
        }));
        assert_eq!(c.len(), 2);
        assert!(c.overlaps(0x103c, 8));
        assert!(!c.overlaps(0x0ff8, 8)); // ends exactly at lo
        assert!(!c.overlaps(0x2010, 8)); // starts exactly at hi

        // A store into the gap hits the coarse range but removes nothing.
        c.invalidate(0x1800, 8);
        assert_eq!(c.len(), 2);
        // A store into the first block removes only that block and shrinks
        // the covering range so the gap no longer probes true.
        c.invalidate(0x1020, 4);
        assert_eq!(c.len(), 1);
        assert!(!c.overlaps(0x1800, 8));
        assert!(c.overlaps(0x2000, 1));
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(!c.overlaps(0x2000, 1));
    }

    #[test]
    fn note_store_drops_translations_and_raises_dirty() {
        let mut m = machine_with("addi a0, a0, 1\nret");
        let b = Arc::new(translate(&m, 0, 0x1000).unwrap());
        m.blocks[0].insert(b);
        // Data store: no overlap, no flag.
        m.note_store(0, 0x8000, 8);
        assert_eq!(m.blocks[0].len(), 1);
        assert!(!m.code_dirty);
        // Code store: translation dropped, dirty flag raised.
        m.note_store(0, 0x1004, 4);
        assert_eq!(m.blocks[0].len(), 0);
        assert!(m.code_dirty);
    }
}
