//! A small two-pass assembler for RV64IM + xBGAS.
//!
//! The paper's workloads are compiled with a modified riscv64 GNU toolchain;
//! our reproduction does not need a C compiler, only a way to author kernels
//! that exercise the xBGAS instruction paths. This assembler accepts the
//! GNU-flavoured syntax used throughout the paper (`eld rd, imm(rs1)`,
//! `erld rd, rs1, ext2`, …) plus the usual label, directive and
//! pseudo-instruction conveniences.
//!
//! Supported directives: `.word`, `.dword`, `.byte`, `.zero`, `.align`,
//! `.ascii`. Supported pseudo-instructions: `nop`, `mv`, `li` (up to 32-bit
//! immediates), `la`, `j`, `jal label`, `call`, `ret`, `beqz`, `bnez`,
//! `eset` (set an e-register to an object ID).
//!
//! ```
//! use xbgas_sim::asm::assemble;
//! let img = assemble(0x1000, r#"
//!     li   t0, 3          # object ID for PE 2
//!     eset e6, 3          # e6 pairs with t1 (x6)
//! loop:
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     ecall
//! "#).unwrap();
//! assert_eq!(img.words.len(), 5);
//! ```

use std::collections::HashMap;
use std::fmt;
use xbgas_isa::{encode, inst, Inst, *};

/// An assembled image: encoded words and the resolved label table.
#[derive(Clone, Debug)]
pub struct Image {
    /// Base address the image was assembled at.
    pub base: u64,
    /// Encoded 32-bit words (instructions and data).
    pub words: Vec<u32>,
    /// Label name → absolute address.
    pub labels: HashMap<String, u64>,
}

impl Image {
    /// Look up a label's absolute address.
    pub fn label(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }
}

/// An assembly error, with the 1-based source line that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// One parsed source statement, pre-resolution.
#[derive(Clone, Debug)]
enum Stmt {
    /// A machine instruction; branch/jump targets may be labels.
    Inst { mnemonic: String, ops: Vec<String> },
    /// Raw 32-bit data words.
    Words(Vec<u32>),
    /// `li rd, imm` (may expand to 1 or 2 instructions).
    Li { rd: XReg, imm: i64 },
    /// `la rd, label` (always 2 instructions).
    La { rd: XReg, label: String },
}

struct Line {
    number: usize,
    stmt: Stmt,
    /// Size in 32-bit words.
    size: usize,
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(bin) = t.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).map(|v| v as i64)
    } else {
        t.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid integer literal `{s}`")),
    }
}

fn xreg(s: &str, line: usize) -> Result<XReg, AsmError> {
    XReg::parse(s.trim()).ok_or(AsmError {
        line,
        message: format!("unknown x-register `{s}`"),
    })
}

fn ereg(s: &str, line: usize) -> Result<EReg, AsmError> {
    EReg::parse(s.trim()).ok_or(AsmError {
        line,
        message: format!("unknown e-register `{s}`"),
    })
}

/// Split `imm(base)` into its parts.
fn mem_operand(s: &str, line: usize) -> Result<(String, String), AsmError> {
    let s = s.trim();
    let open = s.find('(').ok_or(AsmError {
        line,
        message: format!("expected `imm(reg)` operand, got `{s}`"),
    })?;
    if !s.ends_with(')') {
        return err(line, format!("unterminated memory operand `{s}`"));
    }
    let imm = s[..open].trim();
    let base = s[open + 1..s.len() - 1].trim();
    let imm = if imm.is_empty() { "0" } else { imm };
    Ok((imm.to_string(), base.to_string()))
}

fn split_operands(rest: &str) -> Vec<String> {
    // Commas inside parentheses never occur in our syntax, so a plain split
    // suffices.
    rest.split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

/// First pass: parse every line into a sized statement and collect labels.
fn parse(base: u64, source: &str) -> Result<(Vec<Line>, HashMap<String, u64>), AsmError> {
    let mut lines = Vec::new();
    let mut labels = HashMap::new();
    let mut offset_words = 0usize;

    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        // Strip comments.
        let mut text = raw;
        for marker in ["#", "//", ";"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();

        // Peel off any leading labels.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break; // not a label — let instruction parsing report it
            }
            if labels
                .insert(label.to_string(), base + 4 * offset_words as u64)
                .is_some()
            {
                return err(number, format!("duplicate label `{label}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (head, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let mnemonic = head.to_ascii_lowercase();

        let stmt = if let Some(directive) = mnemonic.strip_prefix('.') {
            match directive {
                "word" => {
                    let words = split_operands(rest)
                        .iter()
                        .map(|o| parse_int(o, number).map(|v| v as u32))
                        .collect::<Result<Vec<_>, _>>()?;
                    Stmt::Words(words)
                }
                "dword" => {
                    let mut words = Vec::new();
                    for o in split_operands(rest) {
                        let v = parse_int(&o, number)? as u64;
                        words.push(v as u32);
                        words.push((v >> 32) as u32);
                    }
                    Stmt::Words(words)
                }
                "byte" | "ascii" | "zero" => {
                    // Gather bytes, then pad to word granularity.
                    let mut bytes = Vec::new();
                    match directive {
                        "byte" => {
                            for o in split_operands(rest) {
                                bytes.push(parse_int(&o, number)? as u8);
                            }
                        }
                        "zero" => {
                            let n = parse_int(rest, number)?;
                            if n < 0 {
                                return err(number, ".zero size must be non-negative");
                            }
                            bytes.resize(n as usize, 0);
                        }
                        _ => {
                            let r = rest.trim();
                            if !(r.starts_with('"') && r.ends_with('"') && r.len() >= 2) {
                                return err(number, ".ascii expects a quoted string");
                            }
                            bytes.extend_from_slice(&r.as_bytes()[1..r.len() - 1]);
                        }
                    }
                    while bytes.len() % 4 != 0 {
                        bytes.push(0);
                    }
                    let words = bytes
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect();
                    Stmt::Words(words)
                }
                "align" => {
                    let n = parse_int(rest, number)?;
                    if n < 2 {
                        Stmt::Words(vec![])
                    } else {
                        let align_words = (1usize << n) / 4;
                        let pad = (align_words - offset_words % align_words) % align_words;
                        Stmt::Words(vec![0x13; pad]) // nop padding
                    }
                }
                other => return err(number, format!("unknown directive `.{other}`")),
            }
        } else {
            let ops = split_operands(rest);
            match mnemonic.as_str() {
                "li" => {
                    if ops.len() != 2 {
                        return err(number, "li expects `rd, imm`");
                    }
                    Stmt::Li {
                        rd: xreg(&ops[0], number)?,
                        imm: parse_int(&ops[1], number)?,
                    }
                }
                "la" => {
                    if ops.len() != 2 {
                        return err(number, "la expects `rd, label`");
                    }
                    Stmt::La {
                        rd: xreg(&ops[0], number)?,
                        label: ops[1].clone(),
                    }
                }
                _ => Stmt::Inst { mnemonic, ops },
            }
        };

        let size = match &stmt {
            Stmt::Words(w) => w.len(),
            Stmt::Li { imm, .. } => {
                if (-2048..=2047).contains(imm) {
                    1
                } else if (i32::MIN as i64..=i32::MAX as i64).contains(imm) {
                    2
                } else {
                    return err(number, format!("li immediate {imm} exceeds 32 bits"));
                }
            }
            Stmt::La { .. } => 2,
            Stmt::Inst { .. } => 1,
        };

        offset_words += size;
        lines.push(Line { number, stmt, size });
    }
    Ok((lines, labels))
}

/// Resolve an operand that may be a label or an integer into an i64.
fn value_of(op: &str, labels: &HashMap<String, u64>, line: usize) -> Result<i64, AsmError> {
    if let Some(&addr) = labels.get(op.trim()) {
        return Ok(addr as i64);
    }
    parse_int(op, line)
}

/// Resolve a branch/jump target into a pc-relative offset.
fn offset_of(
    op: &str,
    labels: &HashMap<String, u64>,
    pc: u64,
    line: usize,
) -> Result<i32, AsmError> {
    let target = value_of(op, labels, line)?;
    // A bare integer is taken as an absolute address only if it matches a
    // label-resolved value; otherwise interpret integers as relative.
    if labels.contains_key(op.trim()) {
        Ok((target - pc as i64) as i32)
    } else {
        Ok(target as i32)
    }
}

fn li_words(rd: XReg, imm: i64, line: usize) -> Result<Vec<Inst>, AsmError> {
    if (-2048..=2047).contains(&imm) {
        return Ok(vec![Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: XReg::ZERO,
            imm: imm as i32,
        }]);
    }
    // 32-bit path: lui + addiw, with carry correction for a negative low part.
    let imm = imm as i32;
    let low = (imm << 20) >> 20; // sign-extended low 12 bits
    let high = (imm.wrapping_sub(low)) >> 12;
    if !(-524288..=524287).contains(&high) {
        return err(line, format!("li immediate {imm} exceeds lui range"));
    }
    Ok(vec![
        Inst::Lui { rd, imm20: high },
        Inst::OpImm {
            op: AluImmOp::Addiw,
            rd,
            rs1: rd,
            imm: low,
        },
    ])
}

/// Second pass: emit encoded words.
fn emit(base: u64, lines: &[Line], labels: &HashMap<String, u64>) -> Result<Vec<u32>, AsmError> {
    let mut words: Vec<u32> = Vec::new();

    for line in lines {
        let pc = base + 4 * words.len() as u64;
        let n = line.number;
        let emitted: Vec<u32> = match &line.stmt {
            Stmt::Words(w) => w.clone(),
            Stmt::Li { rd, imm } => li_words(*rd, *imm, n)?
                .iter()
                .map(|i| {
                    encode(i).map_err(|e| AsmError {
                        line: n,
                        message: e.to_string(),
                    })
                })
                .collect::<Result<_, _>>()?,
            Stmt::La { rd, label } => {
                let addr = *labels.get(label).ok_or(AsmError {
                    line: n,
                    message: format!("undefined label `{label}`"),
                })? as i64;
                li_words(*rd, addr, n)?
                    .iter()
                    .map(|i| {
                        encode(i).map_err(|e| AsmError {
                            line: n,
                            message: e.to_string(),
                        })
                    })
                    .collect::<Result<_, _>>()?
            }
            Stmt::Inst { mnemonic, ops } => {
                let inst = build_inst(mnemonic, ops, labels, pc, n)?;
                vec![encode(&inst).map_err(|e| AsmError {
                    line: n,
                    message: format!("{mnemonic}: {e}"),
                })?]
            }
        };
        if emitted.len() != line.size {
            // Internal invariant: pass-1 sizing must match pass-2 emission.
            return err(
                n,
                format!(
                    "internal sizing bug: planned {} words, emitted {}",
                    line.size,
                    emitted.len()
                ),
            );
        }
        words.extend(emitted);
    }
    Ok(words)
}

/// Build a single (non-pseudo-expanding) instruction from its mnemonic.
fn build_inst(
    mnemonic: &str,
    ops: &[String],
    labels: &HashMap<String, u64>,
    pc: u64,
    n: usize,
) -> Result<Inst, AsmError> {
    let need = |count: usize| -> Result<(), AsmError> {
        if ops.len() != count {
            err(
                n,
                format!("`{mnemonic}` expects {count} operands, got {}", ops.len()),
            )
        } else {
            Ok(())
        }
    };

    // Register-register ALU ops.
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Inst::Op {
            op: *op,
            rd: xreg(&ops[0], n)?,
            rs1: xreg(&ops[1], n)?,
            rs2: xreg(&ops[2], n)?,
        });
    }
    // Register-immediate ALU ops.
    if let Some(op) = AluImmOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Inst::OpImm {
            op: *op,
            rd: xreg(&ops[0], n)?,
            rs1: xreg(&ops[1], n)?,
            imm: parse_int(&ops[2], n)? as i32,
        });
    }
    // Branches.
    if let Some(cond) = BranchCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Inst::Branch {
            cond: *cond,
            rs1: xreg(&ops[0], n)?,
            rs2: xreg(&ops[1], n)?,
            offset: offset_of(&ops[2], labels, pc, n)?,
        });
    }
    // Loads / stores, local and extended.
    for w in LoadWidth::ALL {
        if mnemonic == format!("l{}", w.suffix()) || mnemonic == format!("el{}", w.suffix()) {
            need(2)?;
            let (imm, base_reg) = mem_operand(&ops[1], n)?;
            let rd = xreg(&ops[0], n)?;
            let rs1 = xreg(&base_reg, n)?;
            let imm = parse_int(&imm, n)? as i32;
            return Ok(if mnemonic.starts_with('e') {
                Inst::ELoad {
                    width: w,
                    rd,
                    rs1,
                    imm,
                }
            } else {
                Inst::Load {
                    width: w,
                    rd,
                    rs1,
                    imm,
                }
            });
        }
        if mnemonic == format!("erl{}", w.suffix()) {
            need(3)?;
            return Ok(Inst::ERLoad {
                width: w,
                rd: xreg(&ops[0], n)?,
                rs1: xreg(&ops[1], n)?,
                ext2: ereg(&ops[2], n)?,
            });
        }
    }
    for w in StoreWidth::ALL {
        if mnemonic == format!("s{}", w.suffix()) || mnemonic == format!("es{}", w.suffix()) {
            need(2)?;
            let (imm, base_reg) = mem_operand(&ops[1], n)?;
            let rs2 = xreg(&ops[0], n)?;
            let rs1 = xreg(&base_reg, n)?;
            let imm = parse_int(&imm, n)? as i32;
            return Ok(if mnemonic.starts_with('e') {
                Inst::EStore {
                    width: w,
                    rs1,
                    rs2,
                    imm,
                }
            } else {
                Inst::Store {
                    width: w,
                    rs1,
                    rs2,
                    imm,
                }
            });
        }
        if mnemonic == format!("ers{}", w.suffix()) {
            need(3)?;
            return Ok(Inst::ERStore {
                width: w,
                rs2: xreg(&ops[0], n)?,
                rs1: xreg(&ops[1], n)?,
                ext3: ereg(&ops[2], n)?,
            });
        }
    }

    Ok(match mnemonic {
        "lui" => {
            need(2)?;
            Inst::Lui {
                rd: xreg(&ops[0], n)?,
                imm20: parse_int(&ops[1], n)? as i32,
            }
        }
        "auipc" => {
            need(2)?;
            Inst::Auipc {
                rd: xreg(&ops[0], n)?,
                imm20: parse_int(&ops[1], n)? as i32,
            }
        }
        "jal" => match ops.len() {
            1 => Inst::Jal {
                rd: XReg::RA,
                offset: offset_of(&ops[0], labels, pc, n)?,
            },
            2 => Inst::Jal {
                rd: xreg(&ops[0], n)?,
                offset: offset_of(&ops[1], labels, pc, n)?,
            },
            _ => return err(n, "jal expects `label` or `rd, label`"),
        },
        "jalr" => {
            need(2)?;
            let (imm, base_reg) = mem_operand(&ops[1], n)?;
            Inst::Jalr {
                rd: xreg(&ops[0], n)?,
                rs1: xreg(&base_reg, n)?,
                imm: parse_int(&imm, n)? as i32,
            }
        }
        "j" => {
            need(1)?;
            Inst::Jal {
                rd: XReg::ZERO,
                offset: offset_of(&ops[0], labels, pc, n)?,
            }
        }
        "call" => {
            need(1)?;
            Inst::Jal {
                rd: XReg::RA,
                offset: offset_of(&ops[0], labels, pc, n)?,
            }
        }
        "ret" => {
            need(0)?;
            pseudo::ret()
        }
        "nop" => {
            need(0)?;
            pseudo::nop()
        }
        "mv" => {
            need(2)?;
            pseudo::mv(xreg(&ops[0], n)?, xreg(&ops[1], n)?)
        }
        "beqz" => {
            need(2)?;
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: xreg(&ops[0], n)?,
                rs2: XReg::ZERO,
                offset: offset_of(&ops[1], labels, pc, n)?,
            }
        }
        "bnez" => {
            need(2)?;
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: xreg(&ops[0], n)?,
                rs2: XReg::ZERO,
                offset: offset_of(&ops[1], labels, pc, n)?,
            }
        }
        "fence" => Inst::Fence,
        "ecall" => Inst::Ecall,
        "ebreak" => Inst::Ebreak,
        "csrrw" | "csrrs" | "csrrc" => {
            need(3)?;
            let op = match mnemonic {
                "csrrw" => inst::CsrOp::Rw,
                "csrrs" => inst::CsrOp::Rs,
                _ => inst::CsrOp::Rc,
            };
            let csr_name = ops[1].trim();
            let csr = match csr_name {
                "cycle" => inst::csr::CYCLE,
                "time" => inst::csr::TIME,
                "instret" => inst::csr::INSTRET,
                other => parse_int(other, n)? as u16,
            };
            Inst::Csr {
                op,
                rd: xreg(&ops[0], n)?,
                rs1: xreg(&ops[2], n)?,
                csr,
            }
        }
        "rdcycle" => {
            need(1)?;
            pseudo::rdcycle(xreg(&ops[0], n)?)
        }
        "rdinstret" => {
            need(1)?;
            pseudo::rdinstret(xreg(&ops[0], n)?)
        }
        "erse" => {
            need(3)?;
            Inst::ERse {
                ext1: ereg(&ops[0], n)?,
                rs1: xreg(&ops[1], n)?,
                ext2: ereg(&ops[2], n)?,
            }
        }
        "erle" => {
            need(3)?;
            Inst::ERle {
                ext1: ereg(&ops[0], n)?,
                rs1: xreg(&ops[1], n)?,
                ext2: ereg(&ops[2], n)?,
            }
        }
        "eaddi" => {
            need(3)?;
            Inst::Eaddi {
                rd: xreg(&ops[0], n)?,
                ext1: ereg(&ops[1], n)?,
                imm: parse_int(&ops[2], n)? as i32,
            }
        }
        "eaddie" => {
            need(3)?;
            Inst::Eaddie {
                ext: ereg(&ops[0], n)?,
                rs1: xreg(&ops[1], n)?,
                imm: parse_int(&ops[2], n)? as i32,
            }
        }
        "eaddix" => {
            need(3)?;
            Inst::Eaddix {
                ext1: ereg(&ops[0], n)?,
                ext2: ereg(&ops[1], n)?,
                imm: parse_int(&ops[2], n)? as i32,
            }
        }
        "eset" => {
            need(2)?;
            pseudo::eset(ereg(&ops[0], n)?, parse_int(&ops[1], n)? as i32)
        }
        other => return err(n, format!("unknown mnemonic `{other}`")),
    })
}

/// Assemble a source string at `base`; returns the encoded image.
pub fn assemble(base: u64, source: &str) -> Result<Image, AsmError> {
    let (lines, labels) = parse(base, source)?;
    let words = emit(base, &lines, &labels)?;
    Ok(Image {
        base,
        words,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgas_isa::decode;

    #[test]
    fn basic_program() {
        let img = assemble(
            0x1000,
            r#"
            # compute 5 + 6
            li   a0, 5
            li   a1, 6
            add  a0, a0, a1
            ecall
            "#,
        )
        .unwrap();
        assert_eq!(img.words.len(), 4);
        assert_eq!(
            decode(img.words[2]).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::A0,
                rs2: XReg::A1
            }
        );
    }

    #[test]
    fn labels_and_branches() {
        let img = assemble(
            0x1000,
            r#"
            li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            j    done
            nop
        done:
            ecall
            "#,
        )
        .unwrap();
        assert_eq!(img.label("loop"), Some(0x1004));
        assert_eq!(img.label("done"), Some(0x1014));
        // bnez at 0x1008 targeting 0x1004 → offset -4.
        match decode(img.words[2]).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("{other:?}"),
        }
        // j at 0x100c targeting 0x1014 → offset +8.
        match decode(img.words[3]).unwrap() {
            Inst::Jal { rd, offset } => {
                assert_eq!(rd, XReg::ZERO);
                assert_eq!(offset, 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn li_expansion() {
        // Small: 1 word.
        assert_eq!(assemble(0, "li a0, -2048").unwrap().words.len(), 1);
        // 32-bit: 2 words (lui+addiw), incl. negative-low carry correction.
        let img = assemble(0, "li a0, 0x12345").unwrap();
        assert_eq!(img.words.len(), 2);
        // Verify semantics: lui high + addiw low == 0x12345.
        let (hi, lo) = match (decode(img.words[0]).unwrap(), decode(img.words[1]).unwrap()) {
            (Inst::Lui { imm20, .. }, Inst::OpImm { imm, .. }) => (imm20, imm),
            other => panic!("{other:?}"),
        };
        assert_eq!(((hi as i64) << 12) + lo as i64, 0x12345);

        // Low part with bit 11 set requires carry correction.
        let img = assemble(0, "li a0, 0x12FFF").unwrap();
        let (hi, lo) = match (decode(img.words[0]).unwrap(), decode(img.words[1]).unwrap()) {
            (Inst::Lui { imm20, .. }, Inst::OpImm { imm, .. }) => (imm20, imm),
            other => panic!("{other:?}"),
        };
        assert_eq!(((hi as i64) << 12) + lo as i64, 0x12FFF);
    }

    #[test]
    fn xbgas_mnemonics() {
        let img = assemble(
            0x1000,
            r#"
            eset  e5, 2
            eld   a0, 8(t0)
            esd   a1, -8(t0)
            erld  a2, t0, e9
            ersw  a3, t0, e9
            erse  e3, t0, e9
            eaddi a4, e3, 1
            eaddie e7, a0, 0
            eaddix e8, e7, -1
            "#,
        )
        .unwrap();
        assert_eq!(img.words.len(), 9);
        assert!(matches!(
            decode(img.words[1]).unwrap(),
            Inst::ELoad {
                width: LoadWidth::D,
                imm: 8,
                ..
            }
        ));
        assert!(matches!(
            decode(img.words[4]).unwrap(),
            Inst::ERStore {
                width: StoreWidth::W,
                ..
            }
        ));
        assert!(matches!(decode(img.words[5]).unwrap(), Inst::ERse { .. }));
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            0x2000,
            r#"
        data:
            .word  0xDEADBEEF, 1
            .dword 0x0123456789ABCDEF
            .byte  1, 2, 3
            .ascii "hi"
            .zero  4
            "#,
        )
        .unwrap();
        assert_eq!(img.words[0], 0xDEAD_BEEF);
        assert_eq!(img.words[1], 1);
        assert_eq!(img.words[2], 0x89AB_CDEF);
        assert_eq!(img.words[3], 0x0123_4567);
        assert_eq!(img.words[4], u32::from_le_bytes([1, 2, 3, 0]));
        assert_eq!(img.words[5], u32::from_le_bytes([b'h', b'i', 0, 0]));
        assert_eq!(img.words[6], 0);
        assert_eq!(img.label("data"), Some(0x2000));
    }

    #[test]
    fn la_resolves_absolute() {
        let img = assemble(
            0x1000,
            r#"
            la a0, buf
            ecall
        buf:
            .dword 0
            "#,
        )
        .unwrap();
        // la = lui+addiw (2 words), ecall (1) → buf at 0x100c.
        assert_eq!(img.label("buf"), Some(0x100C));
        let (hi, lo) = match (decode(img.words[0]).unwrap(), decode(img.words[1]).unwrap()) {
            (Inst::Lui { imm20, .. }, Inst::OpImm { imm, .. }) => (imm20, imm),
            other => panic!("{other:?}"),
        };
        assert_eq!(((hi as i64) << 12) + lo as i64, 0x100C);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(0, "nop\nbogus a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble(0, "li a0, 99999999999999").unwrap_err();
        assert!(e.message.contains("exceeds 32 bits"));

        let e = assemble(0, "x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate label"));

        let e = assemble(0, "beq a0, a1, nowhere").unwrap_err();
        assert!(e.message.contains("invalid integer"));
    }

    #[test]
    fn align_pads_with_nops() {
        let img = assemble(0x1000, "nop\n.align 4\nhere: nop").unwrap();
        assert_eq!(img.label("here"), Some(0x1010));
        for w in &img.words[1..4] {
            assert_eq!(*w, 0x13); // nop
        }
    }
}
