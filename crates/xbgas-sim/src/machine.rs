//! The multi-core xBGAS machine.
//!
//! [`Machine`] assembles N harts, each with private physical memory, a TLB,
//! an L1/L2 cache hierarchy and an OLB, joined by a shared interconnect —
//! the organisation of the paper's §5.1 simulation environment (12 RV64
//! cores, 256-entry TLB, 8-way 16 KB L1 / 8 MB L2). Execution is
//! discrete-event: the runnable hart with the smallest cycle count steps
//! next, so cross-PE timing interleaves realistically while the simulator
//! itself stays single-threaded and deterministic.
//!
//! Remote xBGAS instructions resolve their extended register through the
//! issuing hart's OLB (object ID 0 = local, per §3.2) and charge interconnect
//! plus remote-DRAM latency.

use crate::block::BlockCache;
use crate::cache::MemHierarchy;
use crate::cost::{ExecMode, MachineConfig};
use crate::hart::{branch_taken, eval_op, eval_op_imm, Hart, HartState, SimFault};
use crate::mem::Memory;
use crate::noc::{Noc, NocStats, SharedChannel};
use crate::olb::{Olb, OlbTarget};
use crate::tlb::Tlb;
use xbgas_isa::{decode, Inst, LoadWidth, StoreWidth, XReg};

/// Environment-call numbers recognised by the machine (placed in `a7`).
pub mod syscall {
    /// Exit with the code in `a0`.
    pub const EXIT: u64 = 0;
    /// Append the byte in `a0` to the PE's console.
    pub const PUTCHAR: u64 = 1;
    /// Return the calling PE's rank in `a0`.
    pub const MY_PE: u64 = 2;
    /// Return the number of PEs in `a0`.
    pub const NUM_PES: u64 = 3;
    /// Block until every live PE has entered the barrier.
    pub const BARRIER: u64 = 4;
    /// Append the decimal rendering of `a0` to the PE's console.
    pub const PRINT_UINT: u64 = 5;
}

/// Why [`Machine::run`] returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// Every hart halted via the exit syscall.
    AllHalted,
    /// A hart faulted; its rank is given.
    Fault {
        /// Rank of the faulting PE.
        pe: usize,
        /// The fault.
        fault: SimFault,
    },
    /// The per-hart cycle budget was exhausted.
    CycleLimit,
    /// Live harts remain but none can make progress (e.g. a barrier that can
    /// never complete because a peer halted).
    Deadlock,
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Why the run ended.
    pub exit: RunExit,
    /// Final cycle count of each hart.
    pub cycles: Vec<u64>,
    /// Final retired-instruction count of each hart.
    pub instret: Vec<u64>,
}

impl RunSummary {
    /// The machine-level makespan: the maximum cycle count over harts.
    pub fn makespan(&self) -> u64 {
        self.cycles.iter().copied().max().unwrap_or(0)
    }
}

/// The simulated multi-core machine.
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) harts: Vec<Hart>,
    pub(crate) mems: Vec<Memory>,
    pub(crate) hiers: Vec<MemHierarchy>,
    pub(crate) tlbs: Vec<Tlb>,
    pub(crate) olbs: Vec<Olb>,
    pub(crate) noc: Noc,
    pub(crate) channel: SharedChannel,
    pub(crate) outputs: Vec<String>,
    /// Per-hart ring buffer of recently executed (pc, word); empty unless
    /// tracing is enabled.
    traces: Vec<std::collections::VecDeque<(u64, u32)>>,
    pub(crate) trace_depth: usize,
    /// Per-PE translated basic blocks (populated only in block mode).
    pub(crate) blocks: Vec<BlockCache>,
    /// Set by [`Machine::note_store`] when a store invalidated cached
    /// translations; the block engine drops out of the current block so it
    /// cannot keep executing stale instructions.
    pub(crate) code_dirty: bool,
    /// True when the memory model can never charge a cycle (the
    /// `functional()` cost preset): TLB walks, cache hits and DRAM are all
    /// zero-latency, so [`Machine::local_access_cost`] may skip the model
    /// state updates entirely. The machine exposes no per-level TLB/cache
    /// statistics, so the skip is unobservable.
    pub(crate) mem_model_free: bool,
}

impl Machine {
    /// Build a machine; every hart starts at `pc = 0x1000` with empty caches
    /// and the canonical OLB mapping (object `k` → PE `k − 1`).
    pub fn new(config: MachineConfig) -> Self {
        let n = config.n_harts;
        assert!(n > 0, "machine needs at least one hart");
        let cost = config.cost;
        let mem_model_free = cost.tlb.miss_cycles == 0
            && cost.l1.hit_cycles == 0
            && cost.l2.hit_cycles == 0
            && cost.mem_cycles == 0;
        Machine {
            config,
            harts: (0..n).map(|_| Hart::new(0x1000)).collect(),
            mems: (0..n).map(|_| Memory::new(config.mem_bytes)).collect(),
            hiers: (0..n)
                .map(|_| MemHierarchy {
                    l1: crate::cache::Cache::new(cost.l1),
                    l2: crate::cache::Cache::new(cost.l2),
                    mem_cycles: cost.mem_cycles,
                })
                .collect(),
            tlbs: (0..n).map(|_| Tlb::new(cost.tlb)).collect(),
            olbs: (0..n)
                .map(|_| Olb::identity_for_pes(n, cost.olb_lookup_cycles))
                .collect(),
            noc: Noc::new(cost.noc),
            channel: SharedChannel::new(),
            outputs: vec![String::new(); n],
            traces: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            trace_depth: 0,
            blocks: (0..n).map(|_| BlockCache::new()).collect(),
            code_dirty: false,
            mem_model_free,
        }
    }

    /// Keep a rolling trace of the last `depth` instructions per hart —
    /// invaluable when a guest kernel faults. Zero disables tracing.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace_depth = depth;
        for t in &mut self.traces {
            t.clear();
        }
    }

    /// Disassembled rolling trace of a hart (oldest first).
    pub fn trace(&self, pe: usize) -> Vec<String> {
        self.traces[pe]
            .iter()
            .map(|&(pc, word)| format!("{pc:#x}: {}", xbgas_isa::disasm_word(word)))
            .collect()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of harts.
    pub fn n_harts(&self) -> usize {
        self.config.n_harts
    }

    /// Immutable view of a hart's architectural state.
    pub fn hart(&self, pe: usize) -> &Hart {
        &self.harts[pe]
    }

    /// Mutable access to a hart (for test setup: seeding registers, pc).
    pub fn hart_mut(&mut self, pe: usize) -> &mut Hart {
        &mut self.harts[pe]
    }

    /// Immutable view of a PE's memory.
    pub fn mem(&self, pe: usize) -> &Memory {
        &self.mems[pe]
    }

    /// Mutable access to a PE's memory (for loading data images).
    ///
    /// The caller may rewrite instruction bytes through this handle, so any
    /// cached block translations for the PE are dropped.
    pub fn mem_mut(&mut self, pe: usize) -> &mut Memory {
        self.blocks[pe].clear();
        &mut self.mems[pe]
    }

    /// Mutable access to a PE's OLB (to install custom object windows).
    pub fn olb_mut(&mut self, pe: usize) -> &mut Olb {
        &mut self.olbs[pe]
    }

    /// Console output produced by a PE via the putchar/print syscalls.
    pub fn output(&self, pe: usize) -> &str {
        &self.outputs[pe]
    }

    /// Interconnect statistics.
    pub fn noc_stats(&self) -> NocStats {
        self.noc.stats()
    }

    /// Load encoded instruction words at `addr` in one PE's memory.
    pub fn load_words(&mut self, pe: usize, addr: u64, words: &[u32]) {
        self.blocks[pe].clear();
        for (i, w) in words.iter().enumerate() {
            self.mems[pe]
                .store_u32(addr + 4 * i as u64, *w)
                .expect("program image exceeds PE memory");
        }
    }

    /// Load the same program at `addr` on every PE (SPMD) and point every
    /// hart's `pc` there.
    pub fn load_program(&mut self, addr: u64, words: &[u32]) {
        for pe in 0..self.n_harts() {
            self.load_words(pe, addr, words);
            self.harts[pe].pc = addr;
        }
    }

    /// Cost of one local data access (TLB + cache hierarchy).
    pub(crate) fn local_access_cost(&mut self, pe: usize, addr: u64) -> u64 {
        if self.mem_model_free {
            return 0;
        }
        self.tlbs[pe].access(addr) + self.hiers[pe].access(addr)
    }

    /// Record that `bytes` bytes were stored at `addr` in PE `pe`'s memory.
    /// If the store lands on instruction bytes that have been translated,
    /// the affected blocks are invalidated and `code_dirty` is raised so the
    /// block engine abandons its current block (self-modifying code).
    #[inline]
    pub(crate) fn note_store(&mut self, pe: usize, addr: u64, bytes: usize) {
        if self.blocks[pe].overlaps(addr, bytes) {
            self.blocks[pe].invalidate(addr, bytes);
            self.code_dirty = true;
        }
    }

    /// Resolve the remote side of an xBGAS access. Returns
    /// `(target_pe, physical_addr, latency)`.
    pub(crate) fn resolve_remote(
        &mut self,
        pe: usize,
        object_id: u64,
        base_addr: u64,
        bytes: usize,
    ) -> Result<(usize, u64, u64), SimFault> {
        let pc = self.harts[pe].pc;
        let (target, olb_cycles) =
            self.olbs[pe]
                .translate(object_id)
                .map_err(|e| SimFault::OlbMiss {
                    pc,
                    object_id: e.object_id,
                })?;
        match target {
            OlbTarget::Local => {
                // Local fast path: plain cached access, no fabric involved.
                let cost = self.local_access_cost(pe, base_addr);
                Ok((pe, base_addr, cost))
            }
            OlbTarget::Remote(entry) => {
                let addr = entry.base.wrapping_add(base_addr);
                // Reserve the shared channel in simulated time: the
                // discrete-event scheduler makes this exact (the hart with
                // the smallest cycle count always steps next), so queueing
                // delays under contention fall out naturally.
                let noc_cfg = *self.noc.config();
                let occupancy = noc_cfg.occupancy(bytes);
                let now = self.harts[pe].cycles;
                let start = self.channel.reserve(now, occupancy);
                let queue_wait = start - now;
                // The remote end services the request from its DRAM.
                let remote_mem = self.config.cost.mem_cycles;
                let total = olb_cycles + queue_wait + occupancy + noc_cfg.base_latency + remote_mem;
                self.noc.record(bytes, total);
                Ok((entry.pe, addr, total))
            }
        }
    }

    #[inline]
    pub(crate) fn load_value(mem: &Memory, width: LoadWidth, addr: u64) -> Result<u64, String> {
        let raw = match width.bytes() {
            1 => mem.load_u8(addr).map(|v| v as u64),
            2 => mem.load_u16(addr).map(|v| v as u64),
            4 => mem.load_u32(addr).map(|v| v as u64),
            _ => mem.load_u64(addr),
        }
        .map_err(|e| e.to_string())?;
        Ok(if width.signed() {
            match width.bytes() {
                1 => raw as u8 as i8 as i64 as u64,
                2 => raw as u16 as i16 as i64 as u64,
                4 => raw as u32 as i32 as i64 as u64,
                _ => raw,
            }
        } else {
            raw
        })
    }

    #[inline]
    pub(crate) fn store_value(
        mem: &mut Memory,
        width: StoreWidth,
        addr: u64,
        value: u64,
    ) -> Result<(), String> {
        match width.bytes() {
            1 => mem.store_u8(addr, value as u8),
            2 => mem.store_u16(addr, value as u16),
            4 => mem.store_u32(addr, value as u32),
            _ => mem.store_u64(addr, value),
        }
        .map_err(|e| e.to_string())
    }

    /// Release a completed barrier: all waiting harts resume at the maximum
    /// cycle count among them (they leave the barrier together).
    fn try_release_barrier(&mut self) {
        let live = self.harts.iter().filter(|h| h.is_live()).count();
        let waiting = self
            .harts
            .iter()
            .filter(|h| h.state == HartState::WaitingBarrier)
            .count();
        if live > 0 && waiting == live {
            let release_at = self
                .harts
                .iter()
                .filter(|h| h.state == HartState::WaitingBarrier)
                .map(|h| h.cycles)
                .max()
                .unwrap_or(0);
            for h in &mut self.harts {
                if h.state == HartState::WaitingBarrier {
                    h.state = HartState::Running;
                    h.cycles = release_at;
                }
            }
        }
    }

    fn syscall(&mut self, pe: usize) -> Result<(), SimFault> {
        let number = self.harts[pe].read_x(XReg::new(17)); // a7
        let a0 = self.harts[pe].read_x(XReg::A0);
        match number {
            syscall::EXIT => {
                self.harts[pe].state = HartState::Halted { code: a0 };
                // A peer halting can complete (or deadlock) a barrier.
                self.try_release_barrier();
            }
            syscall::PUTCHAR => {
                self.outputs[pe].push(a0 as u8 as char);
            }
            syscall::MY_PE => {
                self.harts[pe].write_x(XReg::A0, pe as u64);
            }
            syscall::NUM_PES => {
                let n = self.n_harts() as u64;
                self.harts[pe].write_x(XReg::A0, n);
            }
            syscall::BARRIER => {
                self.harts[pe].state = HartState::WaitingBarrier;
                self.try_release_barrier();
            }
            syscall::PRINT_UINT => {
                use std::fmt::Write;
                let _ = write!(self.outputs[pe], "{a0}");
            }
            other => {
                return Err(SimFault::UnknownSyscall {
                    pc: self.harts[pe].pc,
                    number: other,
                })
            }
        }
        Ok(())
    }

    /// Execute one instruction on hart `pe`.
    ///
    /// Faults transition the hart to [`HartState::Faulted`] and are also
    /// returned for the caller's convenience.
    pub fn step(&mut self, pe: usize) -> Result<(), SimFault> {
        if let Err(fault) = self.step_inner(pe) {
            self.harts[pe].state = HartState::Faulted(fault.clone());
            return Err(fault);
        }
        Ok(())
    }

    fn step_inner(&mut self, pe: usize) -> Result<(), SimFault> {
        debug_assert!(matches!(self.harts[pe].state, HartState::Running));
        let pc = self.harts[pe].pc;

        let word = self.mems[pe]
            .load_u32(pc)
            .map_err(|e| SimFault::Memory(format!("fetch: {e}")))?;
        if self.trace_depth > 0 {
            let t = &mut self.traces[pe];
            if t.len() == self.trace_depth {
                t.pop_front();
            }
            t.push_back((pc, word));
        }
        let inst = decode(word).map_err(|_| SimFault::IllegalInstruction { pc, word })?;
        self.exec_inst(pe, pc, word, inst)
    }

    /// Execute one already-decoded instruction at `pc` on hart `pe`,
    /// committing `pc`/`cycles`/`instret` exactly as the interpretive
    /// stepper does. This is the single source of truth for instruction
    /// semantics: the stepper reaches it through fetch + decode, the block
    /// engine (`crate::block`) reaches it directly for instructions it does
    /// not specialise. `word` is the raw encoding, needed only for fault
    /// reporting.
    pub(crate) fn exec_inst(
        &mut self,
        pe: usize,
        pc: u64,
        word: u32,
        inst: Inst,
    ) -> Result<(), SimFault> {
        let cost_cfg = self.config.cost;
        let mut cost = cost_cfg.fetch_cycles;
        let mut next_pc = pc.wrapping_add(4);

        match inst {
            Inst::Lui { rd, imm20 } => {
                cost += cost_cfg.alu_cycles;
                self.harts[pe].write_x(rd, ((imm20 as i64) << 12) as u64);
            }
            Inst::Auipc { rd, imm20 } => {
                cost += cost_cfg.alu_cycles;
                self.harts[pe].write_x(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64));
            }
            Inst::Jal { rd, offset } => {
                cost += cost_cfg.alu_cycles;
                let target = pc.wrapping_add(offset as i64 as u64);
                // Trap precisely at the jump, before the link register is
                // written, rather than surfacing a confusing fetch error at
                // the bogus target later.
                if target & 3 != 0 {
                    return Err(SimFault::InstructionMisaligned { pc, target });
                }
                self.harts[pe].write_x(rd, next_pc);
                next_pc = target;
            }
            Inst::Jalr { rd, rs1, imm } => {
                cost += cost_cfg.alu_cycles;
                let target = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64) & !1;
                if target & 3 != 0 {
                    return Err(SimFault::InstructionMisaligned { pc, target });
                }
                self.harts[pe].write_x(rd, next_pc);
                next_pc = target;
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                cost += cost_cfg.alu_cycles;
                let a = self.harts[pe].read_x(rs1);
                let b = self.harts[pe].read_x(rs2);
                if branch_taken(cond, a, b) {
                    let target = pc.wrapping_add(offset as i64 as u64);
                    if target & 3 != 0 {
                        return Err(SimFault::InstructionMisaligned { pc, target });
                    }
                    next_pc = target;
                }
            }
            Inst::Load {
                width,
                rd,
                rs1,
                imm,
            } => {
                let addr = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64);
                cost += self.local_access_cost(pe, addr);
                let v = Self::load_value(&self.mems[pe], width, addr).map_err(SimFault::Memory)?;
                self.harts[pe].write_x(rd, v);
            }
            Inst::Store {
                width,
                rs1,
                rs2,
                imm,
            } => {
                let addr = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64);
                cost += self.local_access_cost(pe, addr);
                let v = self.harts[pe].read_x(rs2);
                Self::store_value(&mut self.mems[pe], width, addr, v).map_err(SimFault::Memory)?;
                self.note_store(pe, addr, width.bytes());
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                cost += cost_cfg.alu_cycles;
                let a = self.harts[pe].read_x(rs1);
                self.harts[pe].write_x(rd, eval_op_imm(op, a, imm));
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                use xbgas_isa::AluOp::*;
                cost += match op {
                    Mul | Mulh | Mulhsu | Mulhu | Mulw => cost_cfg.mul_cycles,
                    Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw => cost_cfg.div_cycles,
                    _ => cost_cfg.alu_cycles,
                };
                let a = self.harts[pe].read_x(rs1);
                let b = self.harts[pe].read_x(rs2);
                self.harts[pe].write_x(rd, eval_op(op, a, b));
            }
            Inst::Fence => cost += cost_cfg.fence_cycles,
            Inst::Ecall => {
                cost += cost_cfg.ecall_cycles;
                self.harts[pe].pc = next_pc; // syscall observes post-ecall pc
                self.harts[pe].cycles += cost;
                self.harts[pe].instret += 1;
                return self.syscall(pe);
            }
            Inst::Ebreak => {
                // Like ecall, ebreak is a retired environment transfer: it
                // charges its cost and counts toward instret before the trap
                // is delivered. `pc` is left at the ebreak itself so a
                // debugger can resume there.
                cost += cost_cfg.ecall_cycles;
                self.harts[pe].cycles += cost;
                self.harts[pe].instret += 1;
                return Err(SimFault::Breakpoint { pc });
            }
            Inst::Csr { op, rd, rs1, csr } => {
                use xbgas_isa::inst::{csr as csr_addr, CsrOp};
                cost += cost_cfg.alu_cycles;
                let value = match csr {
                    // The cycle count observed includes this instruction.
                    csr_addr::CYCLE | csr_addr::TIME => self.harts[pe].cycles + cost,
                    csr_addr::INSTRET => self.harts[pe].instret,
                    _ => return Err(SimFault::IllegalInstruction { pc, word }),
                };
                // The exposed counters are read-only: any write attempt
                // (csrrw, or set/clear with rs1 != x0) is illegal.
                let writes = match op {
                    CsrOp::Rw => true,
                    CsrOp::Rs | CsrOp::Rc => rs1.num() != 0,
                };
                if writes {
                    return Err(SimFault::IllegalInstruction { pc, word });
                }
                self.harts[pe].write_x(rd, value);
            }

            // --- xBGAS base integer load/store (implicit e-register) ---
            Inst::ELoad {
                width,
                rd,
                rs1,
                imm,
            } => {
                let object_id = self.harts[pe].read_e(xbgas_isa::EReg::paired_with(rs1));
                let addr = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, width.bytes())?;
                cost += c;
                let v =
                    Self::load_value(&self.mems[tpe], width, taddr).map_err(SimFault::Memory)?;
                self.harts[pe].write_x(rd, v);
            }
            Inst::EStore {
                width,
                rs1,
                rs2,
                imm,
            } => {
                let object_id = self.harts[pe].read_e(xbgas_isa::EReg::paired_with(rs1));
                let addr = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, width.bytes())?;
                cost += c;
                let v = self.harts[pe].read_x(rs2);
                Self::store_value(&mut self.mems[tpe], width, taddr, v)
                    .map_err(SimFault::Memory)?;
                self.note_store(tpe, taddr, width.bytes());
            }

            // --- xBGAS raw integer load/store (explicit e-register) ---
            Inst::ERLoad {
                width,
                rd,
                rs1,
                ext2,
            } => {
                let object_id = self.harts[pe].read_e(ext2);
                let addr = self.harts[pe].read_x(rs1);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, width.bytes())?;
                cost += c;
                let v =
                    Self::load_value(&self.mems[tpe], width, taddr).map_err(SimFault::Memory)?;
                self.harts[pe].write_x(rd, v);
            }
            Inst::ERStore {
                width,
                rs1,
                rs2,
                ext3,
            } => {
                let object_id = self.harts[pe].read_e(ext3);
                let addr = self.harts[pe].read_x(rs1);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, width.bytes())?;
                cost += c;
                let v = self.harts[pe].read_x(rs2);
                Self::store_value(&mut self.mems[tpe], width, taddr, v)
                    .map_err(SimFault::Memory)?;
                self.note_store(tpe, taddr, width.bytes());
            }
            Inst::ERse { ext1, rs1, ext2 } => {
                let object_id = self.harts[pe].read_e(ext2);
                let addr = self.harts[pe].read_x(rs1);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, 8)?;
                cost += c;
                let v = self.harts[pe].read_e(ext1);
                Self::store_value(&mut self.mems[tpe], StoreWidth::D, taddr, v)
                    .map_err(SimFault::Memory)?;
                self.note_store(tpe, taddr, 8);
            }
            Inst::ERle { ext1, rs1, ext2 } => {
                let object_id = self.harts[pe].read_e(ext2);
                let addr = self.harts[pe].read_x(rs1);
                let (tpe, taddr, c) = self.resolve_remote(pe, object_id, addr, 8)?;
                cost += c;
                let v = Self::load_value(&self.mems[tpe], LoadWidth::D, taddr)
                    .map_err(SimFault::Memory)?;
                self.harts[pe].write_e(ext1, v);
            }

            // --- xBGAS address management ---
            Inst::Eaddi { rd, ext1, imm } => {
                cost += cost_cfg.alu_cycles;
                let v = self.harts[pe].read_e(ext1).wrapping_add(imm as i64 as u64);
                self.harts[pe].write_x(rd, v);
            }
            Inst::Eaddie { ext, rs1, imm } => {
                cost += cost_cfg.alu_cycles;
                let v = self.harts[pe].read_x(rs1).wrapping_add(imm as i64 as u64);
                self.harts[pe].write_e(ext, v);
            }
            Inst::Eaddix { ext1, ext2, imm } => {
                cost += cost_cfg.alu_cycles;
                let v = self.harts[pe].read_e(ext2).wrapping_add(imm as i64 as u64);
                self.harts[pe].write_e(ext1, v);
            }
        }

        self.harts[pe].pc = next_pc;
        self.harts[pe].cycles += cost;
        self.harts[pe].instret += 1;
        Ok(())
    }

    /// Discrete-event scheduling decision: the runnable hart with the
    /// smallest cycle count executes next (ties broken by smallest index,
    /// per `min_by_key`). When no hart is runnable, the terminal exit is
    /// derived from the remaining hart states. Shared by both execution
    /// engines so they schedule identically.
    pub(crate) fn next_runnable(&self) -> Result<usize, RunExit> {
        let next = self
            .harts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.state == HartState::Running)
            .min_by_key(|(_, h)| h.cycles)
            .map(|(i, _)| i);

        let Some(pe) = next else {
            if self.harts.iter().any(|h| h.is_live()) {
                // Live harts but none runnable: barrier deadlock.
                return Err(RunExit::Deadlock);
            }
            if let Some((pe, fault)) =
                self.harts
                    .iter()
                    .enumerate()
                    .find_map(|(i, h)| match &h.state {
                        HartState::Faulted(f) => Some((i, f.clone())),
                        _ => None,
                    })
            {
                return Err(RunExit::Fault { pe, fault });
            }
            return Err(RunExit::AllHalted);
        };
        Ok(pe)
    }

    pub(crate) fn summary(&self, exit: RunExit) -> RunSummary {
        RunSummary {
            exit,
            cycles: self.harts.iter().map(|h| h.cycles).collect(),
            instret: self.harts.iter().map(|h| h.instret).collect(),
        }
    }

    /// Run until every hart halts, a hart faults, a barrier deadlocks, or
    /// the cycle budget is exhausted.
    ///
    /// Which engine executes instructions is selected by
    /// [`crate::cost::ExecMode`] in the configuration; both produce
    /// bit-identical registers, memory, `instret` and cycle counts. The
    /// block engine defers to the interpreter while tracing is enabled (the
    /// trace ring buffer is a per-fetch side effect of the stepper).
    pub fn run(&mut self) -> RunSummary {
        if self.config.exec == ExecMode::Block && self.trace_depth == 0 {
            return crate::block::run_block(self);
        }
        self.run_interp()
    }

    /// The interpretive engine: one fetch + decode + dispatch per step.
    fn run_interp(&mut self) -> RunSummary {
        let exit = loop {
            let pe = match self.next_runnable() {
                Ok(pe) => pe,
                Err(exit) => break exit,
            };
            if self.harts[pe].cycles >= self.config.max_cycles {
                break RunExit::CycleLimit;
            }
            if let Err(fault) = self.step(pe) {
                break RunExit::Fault { pe, fault };
            }
        };
        self.summary(exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineConfig;
    use xbgas_isa::{encode, pseudo, AluImmOp, EReg, Inst, LoadWidth, StoreWidth, XReg};

    fn enc(insts: &[Inst]) -> Vec<u32> {
        insts.iter().map(|i| encode(i).unwrap()).collect()
    }

    fn exit_inst() -> [Inst; 2] {
        [pseudo::li(XReg::new(17), syscall::EXIT as i32), Inst::Ecall]
    }

    #[test]
    fn trivial_program_halts() {
        let mut m = Machine::new(MachineConfig::test(1));
        let mut prog = vec![pseudo::li(XReg::A0, 7)];
        prog.extend(exit_inst());
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.hart(0).state, HartState::Halted { code: 7 });
        assert_eq!(s.instret[0], 3);
    }

    #[test]
    fn local_load_store_roundtrip() {
        let mut m = Machine::new(MachineConfig::test(1));
        // sw then lw through memory at address 0x8000.
        let mut prog = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            }, // t0 = 0x8000
            pseudo::li(XReg::new(6), 1234), // t1
            Inst::Store {
                width: StoreWidth::W,
                rs1: XReg::new(5),
                rs2: XReg::new(6),
                imm: 0,
            },
            Inst::Load {
                width: LoadWidth::W,
                rd: XReg::A0,
                rs1: XReg::new(5),
                imm: 0,
            },
        ];
        prog.extend(exit_inst());
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.hart(0).state, HartState::Halted { code: 1234 });
    }

    #[test]
    fn remote_store_lands_on_peer() {
        let mut m = Machine::new(MachineConfig::test(2));
        // PE0 stores 0xBEEF to PE1's address 0x8000 via esd; PE1 just exits.
        // SPMD: both run the same program, branching on my_pe.
        let prog = vec![
            pseudo::li(XReg::new(17), syscall::MY_PE as i32),
            Inst::Ecall, // a0 = my_pe
            Inst::Branch {
                cond: xbgas_isa::BranchCond::Ne,
                rs1: XReg::A0,
                rs2: XReg::ZERO,
                offset: 32, // jump from inst 2 to the join at inst 10
            },
            // --- PE0 only ---
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            }, // t0 = 0x8000
            pseudo::eset(EReg::paired_with(XReg::new(5)), 2), // e5 = object 2 (PE1)
            pseudo::li(XReg::new(6), 0x7BE),
            Inst::EStore {
                width: StoreWidth::D,
                rs1: XReg::new(5),
                rs2: XReg::new(6),
                imm: 0,
            },
            pseudo::nop(),
            pseudo::nop(),
            pseudo::nop(),
            // --- join ---
            pseudo::li(XReg::new(17), syscall::BARRIER as i32),
            Inst::Ecall,
            pseudo::li(XReg::new(17), syscall::EXIT as i32),
            Inst::Ecall,
        ];
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted, "harts: {:?}", {
            let h0 = m.hart(0).state.clone();
            let h1 = m.hart(1).state.clone();
            (h0, h1)
        });
        assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 0x7BE);
        assert_eq!(m.mem(0).load_u64(0x8000).unwrap(), 0); // PE0 untouched
        assert_eq!(m.noc_stats().transactions, 1);
    }

    #[test]
    fn object_zero_accesses_local_memory() {
        let mut m = Machine::new(MachineConfig::test(2));
        // e-register left at 0 → esd is a local store (paper §3.2).
        let mut prog = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            },
            pseudo::li(XReg::new(6), 77),
            Inst::EStore {
                width: StoreWidth::D,
                rs1: XReg::new(5),
                rs2: XReg::new(6),
                imm: 0,
            },
        ];
        prog.extend(exit_inst());
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.mem(0).load_u64(0x8000).unwrap(), 77);
        assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 77); // SPMD: PE1 did the same locally
        assert_eq!(m.noc_stats().transactions, 0); // no fabric traffic
    }

    #[test]
    fn raw_load_reads_peer() {
        let mut m = Machine::new(MachineConfig::test(2));
        m.mem_mut(1).store_u64(0x8000, 4242).unwrap();
        // PE0: erld a0, t0, e9  with e9 = 2 (PE1), t0 = 0x8000.
        let mut prog = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            },
            pseudo::eset(EReg::new(9), 2),
            Inst::ERLoad {
                width: LoadWidth::D,
                rd: XReg::A0,
                rs1: XReg::new(5),
                ext2: EReg::new(9),
            },
        ];
        prog.extend(exit_inst());
        // Only run on PE0; halt PE1 immediately.
        m.load_words(0, 0x1000, &enc(&prog));
        m.load_words(1, 0x1000, &enc(&exit_inst()));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.hart(0).state, HartState::Halted { code: 4242 });
    }

    #[test]
    fn erse_stores_extended_register() {
        let mut m = Machine::new(MachineConfig::test(2));
        let mut prog = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            },
            pseudo::eset(EReg::new(3), 1999), // data in e3
            pseudo::eset(EReg::new(9), 2),    // target PE1
            Inst::ERse {
                ext1: EReg::new(3),
                rs1: XReg::new(5),
                ext2: EReg::new(9),
            },
        ];
        prog.extend(exit_inst());
        m.load_words(0, 0x1000, &enc(&prog));
        m.load_words(1, 0x1000, &enc(&exit_inst()));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 1999);
    }

    #[test]
    fn address_management_moves_values() {
        let mut m = Machine::new(MachineConfig::test(1));
        let mut prog = vec![
            pseudo::li(XReg::new(5), 100),
            Inst::Eaddie {
                ext: EReg::new(4),
                rs1: XReg::new(5),
                imm: 11,
            }, // e4 = 111
            Inst::Eaddix {
                ext1: EReg::new(6),
                ext2: EReg::new(4),
                imm: -1,
            }, // e6 = 110
            Inst::Eaddi {
                rd: XReg::A0,
                ext1: EReg::new(6),
                imm: 5,
            }, // a0 = 115
        ];
        prog.extend(exit_inst());
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.hart(0).state, HartState::Halted { code: 115 });
        assert_eq!(m.hart(0).read_e(EReg::new(4)), 111);
    }

    #[test]
    fn olb_miss_faults() {
        let mut m = Machine::new(MachineConfig::test(1));
        let prog = vec![
            pseudo::eset(EReg::paired_with(XReg::new(5)), 99), // unmapped object
            Inst::ELoad {
                width: LoadWidth::D,
                rd: XReg::A0,
                rs1: XReg::new(5),
                imm: 0,
            },
        ];
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        match s.exit {
            RunExit::Fault {
                pe: 0,
                fault: SimFault::OlbMiss { object_id: 99, .. },
            } => {}
            other => panic!("expected OLB miss, got {other:?}"),
        }
    }

    #[test]
    fn barrier_synchronises_cycles() {
        let mut m = Machine::new(MachineConfig::test(2));
        // PE0 wastes time in a loop before the barrier; both exit after.
        // Use SPMD with per-PE iteration count = (my_pe == 0) ? 50 : 1.
        let prog = vec![
            pseudo::li(XReg::new(17), syscall::MY_PE as i32),
            Inst::Ecall,
            // t0 = (a0 == 0) ? 50 : 1
            pseudo::li(XReg::new(5), 1),
            Inst::Branch {
                cond: xbgas_isa::BranchCond::Ne,
                rs1: XReg::A0,
                rs2: XReg::ZERO,
                offset: 8,
            },
            pseudo::li(XReg::new(5), 50),
            // loop: t0 -= 1; bnez t0, loop
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: XReg::new(5),
                rs1: XReg::new(5),
                imm: -1,
            },
            Inst::Branch {
                cond: xbgas_isa::BranchCond::Ne,
                rs1: XReg::new(5),
                rs2: XReg::ZERO,
                offset: -4,
            },
            pseudo::li(XReg::new(17), syscall::BARRIER as i32),
            Inst::Ecall,
            pseudo::li(XReg::new(17), syscall::EXIT as i32),
            Inst::Ecall,
        ];
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        // Both harts left the barrier at the same simulated time, so their
        // final cycle counts differ only by the two trailing instructions.
        let d = s.cycles[0].abs_diff(s.cycles[1]);
        assert!(d <= 1, "cycle divergence {d} too large: {:?}", s.cycles);
    }

    #[test]
    fn deadlock_detected_when_peer_halts_before_barrier() {
        let mut m = Machine::new(MachineConfig::test(2));
        // PE0 hits the barrier, PE1 exits immediately — deadlock is reported
        // only if *all* live harts wait while none can be released... here
        // PE1 halting makes PE0 the only live hart, so the barrier releases
        // (matching runtimes where exit implies barrier participation is
        // over). PE0 then proceeds to exit: AllHalted.
        let barrier_then_exit = vec![
            pseudo::li(XReg::new(17), syscall::BARRIER as i32),
            Inst::Ecall,
            pseudo::li(XReg::new(17), syscall::EXIT as i32),
            Inst::Ecall,
        ];
        m.load_words(0, 0x1000, &enc(&barrier_then_exit));
        m.load_words(1, 0x1000, &enc(&exit_inst()));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
    }

    #[test]
    fn console_syscalls() {
        let mut m = Machine::new(MachineConfig::test(1));
        let mut prog = vec![
            pseudo::li(XReg::A0, 'h' as i32),
            pseudo::li(XReg::new(17), syscall::PUTCHAR as i32),
            Inst::Ecall,
            pseudo::li(XReg::A0, 'i' as i32),
            Inst::Ecall,
            pseudo::li(XReg::A0, 1234),
            pseudo::li(XReg::new(17), syscall::PRINT_UINT as i32),
            Inst::Ecall,
        ];
        prog.extend(exit_inst());
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.output(0), "hi1234");
    }

    #[test]
    fn cycle_limit_stops_infinite_loop() {
        let mut cfg = MachineConfig::test(1);
        cfg.max_cycles = 1000;
        let mut m = Machine::new(cfg);
        // jal x0, 0 — tight infinite loop.
        let prog = vec![Inst::Jal {
            rd: XReg::ZERO,
            offset: 0,
        }];
        m.load_program(0x1000, &enc(&prog));
        let s = m.run();
        assert_eq!(s.exit, RunExit::CycleLimit);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut m = Machine::new(MachineConfig::test(1));
        m.load_program(0x1000, &[0xFFFF_FFFF]);
        let s = m.run();
        assert!(matches!(
            s.exit,
            RunExit::Fault {
                pe: 0,
                fault: SimFault::IllegalInstruction { .. }
            }
        ));
    }

    #[test]
    fn remote_access_costs_more_than_local() {
        let mut cfg = MachineConfig::test(2);
        cfg.cost = crate::cost::CostConfig::paper();
        cfg.mem_bytes = 1 << 20;
        let mut m = Machine::new(cfg);

        let eld = Inst::ELoad {
            width: LoadWidth::D,
            rd: XReg::A0,
            rs1: XReg::new(5),
            imm: 0,
        };
        // Program A: four local elds (e-reg = 0); the first is a cold miss,
        // the rest hit in L1.
        let mut local = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            },
            eld,
            eld,
            eld,
            eld,
        ];
        local.extend(exit_inst());
        // Program B: four remote elds to PE1 — every one crosses the fabric.
        let mut remote = vec![
            Inst::Lui {
                rd: XReg::new(5),
                imm20: 0x8,
            },
            pseudo::eset(EReg::paired_with(XReg::new(5)), 2),
            eld,
            eld,
            eld,
            eld,
        ];
        remote.extend(exit_inst());

        m.load_words(0, 0x1000, &enc(&local));
        m.load_words(1, 0x1000, &enc(&exit_inst()));
        let cycles_local = {
            let s = m.run();
            assert_eq!(s.exit, RunExit::AllHalted);
            s.cycles[0]
        };

        let mut m2 = Machine::new(cfg);
        m2.load_words(0, 0x1000, &enc(&remote));
        m2.load_words(1, 0x1000, &enc(&exit_inst()));
        let cycles_remote = {
            let s = m2.run();
            assert_eq!(s.exit, RunExit::AllHalted);
            s.cycles[0]
        };
        // One extra eset (a couple of cycles) can't explain the gap; the
        // repeated fabric crossings must.
        assert!(
            cycles_remote > cycles_local + 2 * m2.config().cost.noc.base_latency,
            "remote {cycles_remote} vs local {cycles_local}"
        );
    }
}

#[cfg(test)]
mod csr_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cost::MachineConfig;

    fn run(kernel: &str) -> (Machine, RunSummary) {
        let mut m = Machine::new(MachineConfig::test(1));
        let img = assemble(0x1000, kernel).unwrap();
        m.load_program(0x1000, &img.words);
        let s = m.run();
        (m, s)
    }

    #[test]
    fn rdcycle_is_monotonic_and_kernel_can_self_time() {
        // Measure the cycle delta across a 10-iteration loop.
        let (m, s) = run(r#"
            rdcycle s0
            li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            rdcycle s1
            sub a0, s1, s0
            li a7, 0
            ecall
            "#);
        assert_eq!(s.exit, RunExit::AllHalted);
        let delta = match m.hart(0).state {
            crate::hart::HartState::Halted { code } => code,
            _ => unreachable!(),
        };
        // 20 loop instructions at 2 cycles each (functional cost), plus the
        // closing rdcycle itself.
        assert!(delta >= 40, "measured {delta}");
        assert!(delta <= 60, "measured {delta}");
    }

    #[test]
    fn rdinstret_counts_retired_instructions() {
        let (m, s) = run(r#"
            nop
            nop
            nop
            rdinstret a0
            li a7, 0
            ecall
            "#);
        assert_eq!(s.exit, RunExit::AllHalted);
        // 3 nops retired before the rdinstret executes.
        assert_eq!(m.hart(0).state, HartState::Halted { code: 3 });
    }

    #[test]
    fn writes_to_counters_fault() {
        let (_, s) = run("csrrw a0, cycle, t0\nli a7, 0\necall");
        assert!(matches!(
            s.exit,
            RunExit::Fault {
                fault: SimFault::IllegalInstruction { .. },
                ..
            }
        ));
        // csrrs with rs1 = x0 is the read idiom and must NOT fault.
        let (_, s) = run("csrrs a0, instret, zero\nli a7, 0\necall");
        assert_eq!(s.exit, RunExit::AllHalted);
    }

    #[test]
    fn unknown_csr_faults() {
        let (_, s) = run("csrrs a0, 0x300, zero\nli a7, 0\necall");
        assert!(matches!(
            s.exit,
            RunExit::Fault {
                fault: SimFault::IllegalInstruction { .. },
                ..
            }
        ));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cost::MachineConfig;

    #[test]
    fn trace_records_last_instructions_before_fault() {
        let mut m = Machine::new(MachineConfig::test(1));
        m.enable_trace(4);
        let img = assemble(
            0x1000,
            "li t0, 1\nli t1, 2\nadd t2, t0, t1\n.word 0xffffffff",
        )
        .unwrap();
        m.load_program(0x1000, &img.words);
        let s = m.run();
        assert!(matches!(s.exit, RunExit::Fault { .. }));
        let trace = m.trace(0);
        assert_eq!(trace.len(), 4);
        assert!(trace[2].contains("add t2, t0, t1"), "{trace:?}");
        assert!(trace[3].contains(".word 0xffffffff"), "{trace:?}");
    }

    #[test]
    fn trace_is_bounded() {
        let mut m = Machine::new(MachineConfig::test(1));
        m.enable_trace(2);
        let img = assemble(
            0x1000,
            "li t0, 100\nloop:\naddi t0, t0, -1\nbnez t0, loop\nli a7, 0\necall",
        )
        .unwrap();
        m.load_program(0x1000, &img.words);
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.trace(0).len(), 2);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut m = Machine::new(MachineConfig::test(1));
        let img = assemble(0x1000, "li a7, 0\necall").unwrap();
        m.load_program(0x1000, &img.words);
        m.run();
        assert!(m.trace(0).is_empty());
    }
}

#[cfg(test)]
mod erle_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cost::MachineConfig;

    #[test]
    fn erle_loads_object_id_from_remote_memory() {
        // A distributed directory: PE1's memory holds an object ID at
        // 0x8000; PE0 erle-loads it into e9 and then uses it to address a
        // third location — pointer-chasing through the extended file.
        let mut m = Machine::new(MachineConfig::test(2));
        m.mem_mut(1).store_u64(0x8000, 2).unwrap(); // directory says "PE1"
        m.mem_mut(1).store_u64(0x9000, 777).unwrap(); // the payload
        let img = assemble(
            0x1000,
            r#"
            eaddie e8, zero, 2      # e8 names PE1 (the directory host)
            lui  t0, 0x8
            erle e9, t0, e8         # e9 = directory[0] = object 2
            lui  t1, 0x9
            erld a0, t1, e9         # follow the pointer
            li   a7, 0
            ecall
            "#,
        )
        .unwrap();
        m.load_words(0, 0x1000, &img.words);
        let exit = assemble(0x1000, "li a7, 0\necall").unwrap();
        m.load_words(1, 0x1000, &exit.words);
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        assert_eq!(m.hart(0).state, HartState::Halted { code: 777 });
        assert_eq!(m.hart(0).read_e(xbgas_isa::EReg::new(9)), 2);
    }
}
