//! Object Look-Aside Buffer (OLB).
//!
//! Paper §3.2: *"The OLB contains a mapping of every unique object ID to a
//! remote physical address. Whenever a remote instruction is executed, the
//! upper 64-bits of the address are retrieved from the specified extended
//! register. If the value is equal to 0, representing the local processing
//! element, a local memory operation is performed at the address given in
//! the base register. Otherwise, the OLB is visited in order to translate
//! the object ID into a remote physical address."*
//!
//! In this reproduction an object ID names a whole remote PE: ID `k`
//! (1-based) maps to PE `k - 1` with base offset 0. Richer mappings —
//! arbitrary object windows with nonzero bases — are supported for
//! memory-mapped-I/O-style use (paper §3.1 mentions this domain) and used
//! by tests.

use std::collections::HashMap;
use std::fmt;

/// Where an object ID points: a processing element and a base offset within
/// its physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OlbEntry {
    /// Target processing element.
    pub pe: usize,
    /// Base physical offset added to the 64-bit base address.
    pub base: u64,
}

/// The result of resolving an extended address's upper half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OlbTarget {
    /// Object ID 0: the access is local to the issuing PE.
    Local,
    /// A remote (or aliased-local) object.
    Remote(OlbEntry),
}

/// Error raised for an object ID with no OLB mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OlbMissError {
    /// The unmapped object ID.
    pub object_id: u64,
}

impl fmt::Display for OlbMissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object ID {:#x} has no OLB mapping", self.object_id)
    }
}

impl std::error::Error for OlbMissError {}

/// Lookup statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OlbStats {
    /// Lookups that resolved to the local PE (ID 0).
    pub local: u64,
    /// Lookups that resolved through the mapping table.
    pub translated: u64,
    /// Lookups that faulted (unmapped ID).
    pub faults: u64,
}

/// The Object Look-Aside Buffer: object ID → (PE, base) mapping.
#[derive(Debug)]
pub struct Olb {
    map: HashMap<u64, OlbEntry>,
    /// Cycles charged for a translation (object ID ≠ 0).
    pub lookup_cycles: u64,
    stats: OlbStats,
}

impl Olb {
    /// An empty OLB with the given translation latency.
    pub fn new(lookup_cycles: u64) -> Self {
        Olb {
            map: HashMap::new(),
            lookup_cycles,
            stats: OlbStats::default(),
        }
    }

    /// The canonical runtime mapping: object ID `k` (for `k` in `1..=n_pes`)
    /// names PE `k - 1` with base 0. This is the convention the xbrtime
    /// runtime uses to target peers.
    pub fn identity_for_pes(n_pes: usize, lookup_cycles: u64) -> Self {
        let mut olb = Olb::new(lookup_cycles);
        for pe in 0..n_pes {
            olb.insert(pe as u64 + 1, OlbEntry { pe, base: 0 });
        }
        olb
    }

    /// Install or replace a mapping.
    ///
    /// # Panics
    /// Panics on object ID 0, which is architecturally reserved for "local".
    pub fn insert(&mut self, object_id: u64, entry: OlbEntry) {
        assert!(object_id != 0, "object ID 0 is reserved for the local PE");
        self.map.insert(object_id, entry);
    }

    /// Remove a mapping; returns the old entry if present.
    pub fn remove(&mut self, object_id: u64) -> Option<OlbEntry> {
        self.map.remove(&object_id)
    }

    /// Number of installed mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no mappings are installed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> OlbStats {
        self.stats
    }

    /// Resolve an object ID, returning the target and the lookup latency.
    pub fn translate(&mut self, object_id: u64) -> Result<(OlbTarget, u64), OlbMissError> {
        if object_id == 0 {
            self.stats.local += 1;
            return Ok((OlbTarget::Local, 0));
        }
        match self.map.get(&object_id) {
            Some(&entry) => {
                self.stats.translated += 1;
                Ok((OlbTarget::Remote(entry), self.lookup_cycles))
            }
            None => {
                self.stats.faults += 1;
                Err(OlbMissError { object_id })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_zero_is_local() {
        let mut olb = Olb::new(2);
        let (target, cycles) = olb.translate(0).unwrap();
        assert_eq!(target, OlbTarget::Local);
        assert_eq!(cycles, 0);
        assert_eq!(olb.stats().local, 1);
    }

    #[test]
    fn identity_mapping_convention() {
        let mut olb = Olb::identity_for_pes(4, 2);
        assert_eq!(olb.len(), 4);
        for pe in 0..4usize {
            let (target, cycles) = olb.translate(pe as u64 + 1).unwrap();
            assert_eq!(target, OlbTarget::Remote(OlbEntry { pe, base: 0 }));
            assert_eq!(cycles, 2);
        }
    }

    #[test]
    fn unmapped_id_faults() {
        let mut olb = Olb::identity_for_pes(2, 1);
        let err = olb.translate(99).unwrap_err();
        assert_eq!(err.object_id, 99);
        assert_eq!(olb.stats().faults, 1);
    }

    #[test]
    fn windowed_object() {
        // An object window with a nonzero base, e.g. a memory-mapped region.
        let mut olb = Olb::new(3);
        olb.insert(
            0xCAFE,
            OlbEntry {
                pe: 7,
                base: 0x10_0000,
            },
        );
        let (target, _) = olb.translate(0xCAFE).unwrap();
        assert_eq!(
            target,
            OlbTarget::Remote(OlbEntry {
                pe: 7,
                base: 0x10_0000
            })
        );
        assert_eq!(
            olb.remove(0xCAFE),
            Some(OlbEntry {
                pe: 7,
                base: 0x10_0000
            })
        );
        assert!(olb.is_empty());
    }

    #[test]
    #[should_panic(expected = "reserved for the local PE")]
    fn inserting_id_zero_panics() {
        let mut olb = Olb::new(1);
        olb.insert(0, OlbEntry { pe: 0, base: 0 });
    }
}
