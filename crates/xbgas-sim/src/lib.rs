//! # xbgas-sim — the paper's simulation environment, rebuilt in Rust
//!
//! *Collective Communication for the RISC-V xBGAS ISA Extension* (ICPP 2019)
//! evaluates its runtime on a Spike-based environment: RV64I cores extended
//! with xBGAS, 256-entry TLBs, 8-way 16 KB L1 and 8 MB L2 caches, and an
//! MPICH bridge standing in for the inter-node fabric (§5.1). This crate is
//! that environment as a self-contained library:
//!
//! * [`mem::Memory`] — per-PE flat physical memory,
//! * [`cache`] — set-associative L1/L2 models with LRU and statistics,
//! * [`tlb::Tlb`] — the 256-entry TLB model,
//! * [`olb::Olb`] — the Object Look-Aside Buffer of paper §3.2,
//! * [`noc`] — the interconnect timing model (latency, bandwidth, congestion),
//! * [`hart::Hart`] — one RV64IM+xBGAS core (x0–x31 **and** e0–e31),
//! * [`machine::Machine`] — the N-core discrete-event machine with
//!   exit/putchar/my_pe/num_pes/barrier environment calls,
//! * [`asm`] — a two-pass assembler for authoring xBGAS kernels,
//! * [`cost`] — the timing calibration (`paper()` presets).
//!
//! The instruction-level machine verifies ISA semantics and produces the
//! micro-level timing parameters; the `xbrtime` crate implements the paper's
//! runtime and collectives on a thread-per-PE fabric that reuses this
//! crate's cost model for its simulated clock.
//!
//! ## Example: a remote store between two PEs
//!
//! ```
//! use xbgas_sim::{asm::assemble, cost::MachineConfig, machine::{Machine, RunExit}};
//!
//! let mut m = Machine::new(MachineConfig::test(2));
//! // SPMD: every PE stores (my_pe + 100) into its right neighbour's slot 0x8000.
//! let img = assemble(0x1000, r#"
//!     li   a7, 2          # MY_PE
//!     ecall
//!     addi t1, a0, 100    # value = my_pe + 100
//!     addi t2, a0, 1      # neighbour rank
//!     li   t3, 2
//!     rem  t2, t2, t3     # (my_pe + 1) % 2
//!     addi t2, t2, 1      # object ID = rank + 1
//!     lui  t0, 0x8        # address 0x8000
//!     eaddie e5, t2, 0    # e5 (pairs with t0=x5) = neighbour object ID
//!     esd  t1, 0(t0)      # remote store
//!     li   a7, 4          # BARRIER
//!     ecall
//!     li   a7, 0          # EXIT
//!     ecall
//! "#).unwrap();
//! m.load_program(0x1000, &img.words);
//! let summary = m.run();
//! assert_eq!(summary.exit, RunExit::AllHalted);
//! assert_eq!(m.mem(0).load_u64(0x8000).unwrap(), 101); // from PE 1
//! assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 100); // from PE 0
//! ```

#![warn(missing_docs)]

pub mod asm;
mod block;
pub mod cache;
pub mod cost;
pub mod hart;
pub mod machine;
pub mod mem;
pub mod noc;
pub mod olb;
pub mod tlb;

pub use cost::{CostConfig, ExecMode, MachineConfig};
pub use machine::{Machine, RunExit, RunSummary};
