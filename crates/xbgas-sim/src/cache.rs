//! Set-associative cache model with LRU replacement.
//!
//! The paper's simulation environment configures each core with an 8-way
//! set-associative 16 KB L1 and 8 MB L2 (§5.1). This model tracks tags only
//! (data lives in [`crate::mem::Memory`]); it exists to produce hit/miss
//! statistics and latency, which drive the timing model.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Latency of a hit in this level, in cycles.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// The paper's L1: 16 KB, 8-way (64 B lines, 1-cycle hits).
    pub const fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_cycles: 1,
        }
    }

    /// The paper's L2: 8 MB, 8-way (64 B lines, 10-cycle hits).
    pub const fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_cycles: 10,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotonic timestamp of last touch, for LRU.
    lru: u64,
}

/// A single tag-only set-associative cache with true-LRU replacement.
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (non-power-of-two sets or
    /// line size, or zero ways).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    lru: 0
                };
                sets * config.ways
            ],
            set_mask: (sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (the tag state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Touch the line containing `addr`; returns `true` on a hit.
    ///
    /// On a miss the line is filled (allocate-on-miss for both reads and
    /// writes, as in a write-allocate cache), evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.config.ways;
        let base = set * ways;

        // Search for a hit.
        for i in 0..ways {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }

        // Miss: fill the invalid or least-recently-used way.
        self.stats.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..ways {
            let line = &self.lines[base + i];
            if !line.valid {
                victim = i;
                break;
            }
            if line.lru < oldest {
                oldest = line.lru;
                victim = i;
            }
        }
        self.lines[base + victim] = Line {
            tag,
            valid: true,
            lru: self.tick,
        };
        false
    }

    /// Invalidate every line (e.g. across a simulated context switch).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

/// A two-level data-cache hierarchy plus memory, producing access latencies.
pub struct MemHierarchy {
    /// First-level cache.
    pub l1: Cache,
    /// Second-level cache.
    pub l2: Cache,
    /// Latency of a DRAM access in cycles (paid on an L2 miss).
    pub mem_cycles: u64,
}

impl MemHierarchy {
    /// Build the paper's hierarchy: 16 KB L1, 8 MB L2, `mem_cycles` DRAM.
    pub fn paper(mem_cycles: u64) -> Self {
        MemHierarchy {
            l1: Cache::new(CacheConfig::paper_l1()),
            l2: Cache::new(CacheConfig::paper_l2()),
            mem_cycles,
        }
    }

    /// Simulate a data access and return its latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            self.l1.config().hit_cycles
        } else if self.l2.access(addr) {
            self.l1.config().hit_cycles + self.l2.config().hit_cycles
        } else {
            self.l1.config().hit_cycles + self.l2.config().hit_cycles + self.mem_cycles
        }
    }

    /// Simulate a *streaming* access: the line is filled as usual, but an
    /// L2 miss costs `stream_cycles` instead of the full DRAM latency —
    /// the prefetcher has the line in flight. Used for the interior lines
    /// of contiguous bulk transfers.
    pub fn access_streaming(&mut self, addr: u64, stream_cycles: u64) -> u64 {
        if self.l1.access(addr) {
            self.l1.config().hit_cycles
        } else if self.l2.access(addr) {
            self.l1.config().hit_cycles + self.l2.config().hit_cycles
        } else {
            self.l1.config().hit_cycles + stream_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 16,
            hit_cycles: 1,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.sets(), 32); // 16384 / (8*64)
        let c = CacheConfig::paper_l2();
        assert_eq!(c.sets(), 16384); // 8 MiB / (8*64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40)); // cold miss
        assert!(c.access(0x40)); // now resident
        assert!(c.access(0x4F)); // same 16-byte line
        assert!(!c.access(0x50)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 16 B = 64 B).
        let (a, b, d) = (0x000, 0x040, 0x080);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU; b is LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a)); // a survived
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x0);
        assert!(c.access(0x0));
        c.flush();
        assert!(!c.access(0x0));
    }

    #[test]
    fn working_set_behaviour() {
        // A working set that fits in the cache converges to a 100% hit rate.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 4,
            line_bytes: 16,
            hit_cycles: 1,
        });
        for _ in 0..4 {
            for addr in (0..1024u64).step_by(16) {
                c.access(addr);
            }
        }
        // 64 cold misses, 192 hits.
        assert_eq!(c.stats().misses, 64);
        assert_eq!(c.stats().hits, 192);

        // A working set 2x the cache with LRU round-robin sweep thrashes to 0%.
        let mut c = Cache::new(*c.config());
        for _ in 0..4 {
            for addr in (0..2048u64).step_by(16) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = MemHierarchy::paper(100);
        // Cold access: L1 miss + L2 miss + DRAM.
        assert_eq!(h.access(0x1000), 1 + 10 + 100);
        // Hot in L1.
        assert_eq!(h.access(0x1000), 1);
        // Evict from tiny L1 by sweeping > 16 KB, then re-access: L2 hit.
        for addr in (0x1_0000..0x1_8000u64).step_by(64) {
            h.access(addr);
        }
        assert_eq!(h.access(0x1000), 1 + 10);
    }

    #[test]
    fn stats_hit_rate() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            ways: 2,
            line_bytes: 16,
            hit_cycles: 1,
        });
    }
}
