//! Flat physical memory for one processing element.
//!
//! Each simulated PE owns a private physical memory. All accesses are
//! little-endian, matching RISC-V. Bounds violations surface as
//! [`MemError`]s rather than panics so that guest bugs become simulator
//! traps, not host crashes.

use std::fmt;

/// Error raised by an out-of-bounds or misaligned guest access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Access past the end of physical memory.
    OutOfBounds {
        /// Faulting guest address.
        addr: u64,
        /// Access size in bytes.
        size: usize,
        /// Size of the memory in bytes.
        mem_size: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::OutOfBounds {
                addr,
                size,
                mem_size,
            } => write!(
                f,
                "memory access of {size} bytes at {addr:#x} exceeds {mem_size:#x}-byte memory"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable little-endian physical memory.
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Total size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    fn check(&self, addr: u64, size: usize) -> Result<usize, MemError> {
        let a = addr as usize;
        if a.checked_add(size).is_none_or(|end| end > self.bytes.len()) {
            return Err(MemError::OutOfBounds {
                addr,
                size,
                mem_size: self.bytes.len(),
            });
        }
        Ok(a)
    }

    /// Read `N` bytes starting at `addr`.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u64) -> Result<[u8; N], MemError> {
        let a = self.check(addr, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[a..a + N]);
        Ok(out)
    }

    /// Write `N` bytes starting at `addr`.
    #[inline]
    pub fn write<const N: usize>(&mut self, addr: u64, data: [u8; N]) -> Result<(), MemError> {
        let a = self.check(addr, N)?;
        self.bytes[a..a + N].copy_from_slice(&data);
        Ok(())
    }

    /// Load an unsigned 8-bit value.
    #[inline]
    pub fn load_u8(&self, addr: u64) -> Result<u8, MemError> {
        Ok(u8::from_le_bytes(self.read(addr)?))
    }

    /// Load an unsigned 16-bit value.
    #[inline]
    pub fn load_u16(&self, addr: u64) -> Result<u16, MemError> {
        Ok(u16::from_le_bytes(self.read(addr)?))
    }

    /// Load an unsigned 32-bit value.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> Result<u32, MemError> {
        Ok(u32::from_le_bytes(self.read(addr)?))
    }

    /// Load an unsigned 64-bit value.
    #[inline]
    pub fn load_u64(&self, addr: u64) -> Result<u64, MemError> {
        Ok(u64::from_le_bytes(self.read(addr)?))
    }

    /// Store an 8-bit value.
    #[inline]
    pub fn store_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.write(addr, v.to_le_bytes())
    }

    /// Store a 16-bit value.
    #[inline]
    pub fn store_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write(addr, v.to_le_bytes())
    }

    /// Store a 32-bit value.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write(addr, v.to_le_bytes())
    }

    /// Store a 64-bit value.
    #[inline]
    pub fn store_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write(addr, v.to_le_bytes())
    }

    /// Copy a byte slice into memory at `addr` (used by the program loader).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let a = self.check(addr, data.len())?;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read `len` bytes starting at `addr` into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        let a = self.check(addr, len)?;
        Ok(self.bytes[a..a + len].to_vec())
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new(64);
        m.store_u64(8, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.load_u64(8).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.load_u8(8).unwrap(), 0xEF); // LE: low byte first
        assert_eq!(m.load_u16(8).unwrap(), 0xCDEF);
        assert_eq!(m.load_u32(12).unwrap(), 0x0123_4567);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::new(16);
        assert!(m.load_u64(8).is_ok());
        assert!(matches!(
            m.load_u64(9),
            Err(MemError::OutOfBounds {
                addr: 9,
                size: 8,
                ..
            })
        ));
        assert!(m.store_u8(15, 1).is_ok());
        assert!(m.store_u8(16, 1).is_err());
        // Overflow-safe address arithmetic.
        assert!(m.load_u32(u64::MAX - 1).is_err());
    }

    #[test]
    fn bulk_io() {
        let mut m = Memory::new(32);
        m.write_bytes(4, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(4, 5).unwrap(), vec![1, 2, 3, 4, 5]);
        assert!(m.write_bytes(30, &[0; 3]).is_err());
    }

    #[test]
    fn unaligned_access_allowed() {
        // Spike permits unaligned accesses on RV64; so do we.
        let mut m = Memory::new(32);
        m.store_u32(3, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load_u32(3).unwrap(), 0xDEAD_BEEF);
    }
}
