//! Interconnect (network-on-chip / inter-node fabric) timing model.
//!
//! The paper's environment bridges PEs with MPICH purely as a simulation
//! transport; architecturally, xBGAS remote loads/stores travel over
//! whatever fabric connects the nodes. This model charges each remote
//! transaction
//!
//! ```text
//! cost = base_latency + ceil(bytes / bytes_per_cycle) * (1 + congestion)
//! ```
//!
//! where `congestion` grows linearly with the number of *other* in-flight
//! transactions, scaled by `congestion_factor`. The binomial-tree
//! collectives exist precisely to keep the number of simultaneous
//! transactions per stage low (paper §4.2 "minimize network congestion"),
//! so congestion sensitivity is what lets benches show the tree winning.

/// Parameters of the interconnect model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocConfig {
    /// Fixed per-transaction latency in cycles (flight time + routing).
    pub base_latency: u64,
    /// Payload bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Additional fractional serialization cost per concurrent transaction
    /// (used by the instruction-level machine's in-flight tracker).
    ///
    /// With `k` other transactions in flight, the serialization term is
    /// multiplied by `1 + congestion_factor * k`.
    pub congestion_factor: f64,
    /// Channel occupancy charged per transaction regardless of size
    /// (header/routing/turnaround). Together with the serialization term
    /// this is how long a transaction holds the shared channel in the
    /// fabric's reservation model — the source of queueing delay under
    /// saturation.
    pub packet_occupancy: u64,
}

impl NocConfig {
    /// Default calibration used by the figure harnesses.
    ///
    /// xBGAS's premise (paper §3.1) is that remote accesses are *cheap* —
    /// no kernel crossings, no copies — so the base latency is of the same
    /// order as a NUMA hop rather than the microseconds of a software
    /// network stack.
    pub const fn paper() -> Self {
        NocConfig {
            base_latency: 30,
            bytes_per_cycle: 8,
            congestion_factor: 0.35,
            packet_occupancy: 32,
        }
    }

    /// A zero-cost fabric, useful for functional-only tests.
    pub const fn free() -> Self {
        NocConfig {
            base_latency: 0,
            bytes_per_cycle: u64::MAX,
            congestion_factor: 0.0,
            packet_occupancy: 0,
        }
    }

    /// How long one transaction of `bytes` holds the shared channel.
    pub fn occupancy(&self, bytes: usize) -> u64 {
        let serial = if self.bytes_per_cycle == u64::MAX {
            0
        } else {
            (bytes as u64).div_ceil(self.bytes_per_cycle)
        };
        self.packet_occupancy + serial
    }

    /// Cycles to move `bytes` with `in_flight` *other* active transactions.
    pub fn transfer_cost(&self, bytes: usize, in_flight: usize) -> u64 {
        let serial = if self.bytes_per_cycle == u64::MAX {
            0
        } else {
            (bytes as u64).div_ceil(self.bytes_per_cycle)
        };
        let scale = 1.0 + self.congestion_factor * in_flight as f64;
        self.base_latency + (serial as f64 * scale).round() as u64
    }
}

/// A shared-channel reservation model in *simulated* time.
///
/// Every remote transaction reserves the channel for its
/// [`NocConfig::occupancy`]; a requester arriving while the channel is
/// busy queues behind the reservation. Under light load a transaction
/// waits ~0 cycles; as offered load approaches channel capacity the wait
/// grows without bound — the queueing behaviour that produces the paper's
/// 8-PE performance drop. Total channel time is conserved regardless of
/// thread interleaving, so saturated makespans are stable run-to-run.
#[derive(Debug, Default)]
pub struct SharedChannel {
    busy_until: std::sync::atomic::AtomicU64,
}

impl SharedChannel {
    /// A channel idle since cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the channel for `occupancy` cycles starting no earlier than
    /// `now`; returns the cycle at which this transaction actually starts.
    pub fn reserve(&self, now: u64, occupancy: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let mut prev = self.busy_until.load(Ordering::Relaxed);
        loop {
            let start = prev.max(now);
            match self.busy_until.compare_exchange_weak(
                prev,
                start + occupancy,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return start,
                Err(actual) => prev = actual,
            }
        }
    }
}

/// Traffic counters for the fabric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Total cycles charged across all transactions.
    pub cycles: u64,
    /// Maximum concurrency observed.
    pub peak_in_flight: usize,
}

/// Single-threaded fabric tracker used by the instruction-level simulator.
///
/// The multithreaded runtime (`xbrtime`) keeps its own atomic tracker; this
/// one serves the discrete-event machine where steps are serialized.
#[derive(Debug)]
pub struct Noc {
    config: NocConfig,
    in_flight: usize,
    stats: NocStats,
}

impl Noc {
    /// Build a fabric with the given parameters.
    pub fn new(config: NocConfig) -> Self {
        Noc {
            config,
            in_flight: 0,
            stats: NocStats::default(),
        }
    }

    /// The fabric parameters.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Begin a transaction: returns its cost in cycles given current load.
    pub fn begin(&mut self, bytes: usize) -> u64 {
        let cost = self.config.transfer_cost(bytes, self.in_flight);
        self.in_flight += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
        self.stats.transactions += 1;
        self.stats.bytes += bytes as u64;
        self.stats.cycles += cost;
        cost
    }

    /// Complete a transaction started with [`Noc::begin`].
    ///
    /// # Panics
    /// Panics if no transaction is in flight (begin/end imbalance).
    pub fn end(&mut self) {
        assert!(self.in_flight > 0, "NoC end() without matching begin()");
        self.in_flight -= 1;
    }

    /// Charge a whole transaction at once (begin + immediate end).
    pub fn transact(&mut self, bytes: usize) -> u64 {
        let cost = self.begin(bytes);
        self.end();
        cost
    }

    /// Record a transaction in the statistics without computing a cost —
    /// for callers that price the transfer through [`SharedChannel`]
    /// reservations instead of the in-flight congestion model.
    pub fn record(&mut self, bytes: usize, cycles: u64) {
        self.stats.transactions += 1;
        self.stats.bytes += bytes as u64;
        self.stats.cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_plus_serialization() {
        let c = NocConfig {
            base_latency: 100,
            bytes_per_cycle: 8,
            congestion_factor: 0.0,
            packet_occupancy: 40,
        };
        assert_eq!(c.transfer_cost(0, 0), 100);
        assert_eq!(c.transfer_cost(8, 0), 101);
        assert_eq!(c.transfer_cost(9, 0), 102); // ceil
        assert_eq!(c.transfer_cost(64, 0), 108);
    }

    #[test]
    fn congestion_scales_serialization_only() {
        let c = NocConfig {
            base_latency: 100,
            bytes_per_cycle: 8,
            congestion_factor: 0.5,
            packet_occupancy: 40,
        };
        // 80 bytes = 10 serialization cycles; 2 others in flight → x2.
        assert_eq!(c.transfer_cost(80, 2), 100 + 20);
        // Base latency is unaffected by congestion.
        assert_eq!(c.transfer_cost(0, 10), 100);
    }

    #[test]
    fn free_fabric_is_free() {
        let c = NocConfig::free();
        assert_eq!(c.transfer_cost(1 << 30, 100), 0);
    }

    #[test]
    fn tracker_counts_concurrency() {
        let mut n = Noc::new(NocConfig {
            base_latency: 10,
            bytes_per_cycle: 1,
            congestion_factor: 1.0,
            packet_occupancy: 40,
        });
        let c1 = n.begin(4); // 0 others in flight
        let c2 = n.begin(4); // 1 other in flight
        assert_eq!(c1, 10 + 4);
        assert_eq!(c2, 10 + 8);
        n.end();
        n.end();
        assert_eq!(n.stats().transactions, 2);
        assert_eq!(n.stats().bytes, 8);
        assert_eq!(n.stats().peak_in_flight, 2);
    }

    #[test]
    #[should_panic(expected = "without matching begin")]
    fn unbalanced_end_panics() {
        let mut n = Noc::new(NocConfig::paper());
        n.end();
    }
}
