//! End-to-end tests through the whole ISA stack: assembler → encoder →
//! decoder → multi-core machine, exercising every xBGAS instruction group
//! (paper §3.2) from program text down to architectural effects.

use xbgas::isa::{decode, InstCategory};
use xbgas::sim::asm::assemble;
use xbgas::sim::cost::MachineConfig;
use xbgas::sim::hart::HartState;
use xbgas::sim::machine::{Machine, RunExit};
use xbgas::sim::olb::OlbEntry;

fn run_kernel(n_pes: usize, kernel: &str) -> (Machine, Vec<u64>) {
    let mut m = Machine::new(MachineConfig::test(n_pes));
    let img = assemble(0x1000, kernel).expect("kernel must assemble");
    m.load_program(0x1000, &img.words);
    let summary = m.run();
    assert_eq!(summary.exit, RunExit::AllHalted, "{:?}", summary.exit);
    let codes = (0..n_pes)
        .map(|pe| match m.hart(pe).state {
            HartState::Halted { code } => code,
            ref other => panic!("PE {pe} in state {other:?}"),
        })
        .collect();
    (m, codes)
}

#[test]
fn fibonacci_in_rv64i() {
    // Pure base-ISA sanity: fib(20) = 6765 computed with a loop.
    let (_, codes) = run_kernel(
        1,
        r#"
        li   t0, 0          # fib(0)
        li   t1, 1          # fib(1)
        li   t2, 20
    loop:
        add  t3, t0, t1
        mv   t0, t1
        mv   t1, t3
        addi t2, t2, -1
        bnez t2, loop
        mv   a0, t0
        li   a7, 0
        ecall
        "#,
    );
    assert_eq!(codes[0], 6765);
}

#[test]
fn all_three_xbgas_groups_in_one_kernel() {
    // Base extended store (esd), raw extended load (erld), and all three
    // address-management forms in one program, PE0 → PE1.
    let kernel = r#"
        li   a7, 2
        ecall                   # a0 = my_pe
        bnez a0, wait           # only PE0 drives

        # address management: build object ID 2 (PE1) three different ways
        li   t0, 2
        eaddie e9, t0, 0        # e9 = 2           (base -> extended)
        eaddix e10, e9, 0       # e10 = e9         (extended -> extended)
        eaddi  t4, e10, 0       # t4 = e10 = 2     (extended -> base)

        # base extended store through the paired register e6 (pairs x6=t1)
        eaddie e6, t4, 0        # e6 = 2
        lui  t1, 0x8            # t1 = 0x8000
        li   t2, 777
        esd  t2, 0(t1)          # remote store to PE1

        # raw extended load reads it back through e10 explicitly
        erld a1, t1, e10
        li   a7, 4
        ecall                   # barrier
        mv   a0, a1
        li   a7, 0
        ecall

    wait:
        li   a7, 4
        ecall                   # barrier
        lui  t1, 0x8
        ld   a0, 0(t1)          # PE1 loads locally what PE0 stored
        li   a7, 0
        ecall
        "#;
    let (m, codes) = run_kernel(2, kernel);
    assert_eq!(codes[0], 777, "PE0's raw load must see its own store");
    assert_eq!(codes[1], 777, "PE1 must find the value in local memory");
    assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 777);
    assert_eq!(m.mem(0).load_u64(0x8000).unwrap(), 0);
}

#[test]
fn erse_moves_extended_register_contents() {
    let kernel = r#"
        li   a7, 2
        ecall
        bnez a0, skip
        li   t0, 4242
        eaddie e3, t0, 0        # e3 holds the data
        li   t0, 2
        eaddie e9, t0, 0        # e9 names PE1
        lui  t1, 0x8
        erse e3, t1, e9         # store e3's 64 bits to PE1:0x8000
    skip:
        li   a7, 4
        ecall
        li   a7, 0
        ecall
        "#;
    let (m, _) = run_kernel(2, kernel);
    assert_eq!(m.mem(1).load_u64(0x8000).unwrap(), 4242);
}

#[test]
fn olb_window_objects_translate_with_base_offsets() {
    // Install a custom object window (ID 0x50 → PE1 at base 0x2000) and
    // access it: the 64-bit base address is offset by the window base —
    // the memory-mapped-I/O usage paper §3.1 sketches.
    let mut m = Machine::new(MachineConfig::test(2));
    m.olb_mut(0).insert(
        0x50,
        OlbEntry {
            pe: 1,
            base: 0x2000,
        },
    );
    let img = assemble(
        0x1000,
        r#"
        li   t0, 0x50
        eaddie e6, t0, 0
        lui  t1, 0x1            # guest address 0x1000... within the window
        li   t2, 99
        esd  t2, 0(t1)          # lands at PE1 physical 0x2000 + 0x1000
        li   a7, 0
        ecall
        "#,
    )
    .unwrap();
    m.load_words(0, 0x1000, &img.words);
    // PE1 just exits.
    let exit = assemble(0x1000, "li a7, 0\necall").unwrap();
    m.load_words(1, 0x1000, &exit.words);
    let s = m.run();
    assert_eq!(s.exit, RunExit::AllHalted);
    assert_eq!(m.mem(1).load_u64(0x3000).unwrap(), 99);
}

#[test]
fn spmd_tree_style_pairwise_exchange() {
    // A miniature binomial-style stage in assembly: even PEs store to
    // odd partners (rank ^ 1), the exact pairing of reduction stage 0.
    let kernel = r#"
        li   a7, 2
        ecall
        mv   s0, a0
        andi t0, s0, 1
        bnez t0, recv           # odd ranks receive

        xori t1, s0, 1          # partner = rank ^ 1
        addi t1, t1, 1          # object ID
        eaddie e6, t1, 0
        lui  t1, 0x8
        addi t2, s0, 500
        esd  t2, 0(t1)
    recv:
        li   a7, 4
        ecall
        lui  t1, 0x8
        ld   a0, 0(t1)
        li   a7, 0
        ecall
        "#;
    let (_, codes) = run_kernel(4, kernel);
    assert_eq!(codes[1], 500, "PE1 received from PE0");
    assert_eq!(codes[3], 502, "PE3 received from PE2");
    assert_eq!(codes[0], 0, "even PEs' slots untouched");
    assert_eq!(codes[2], 0);
}

#[test]
fn disassembly_of_assembled_kernel_is_stable() {
    // assemble → decode → disassemble → reassemble is a fixpoint for
    // label-free instruction sequences.
    let src = r#"
        addi a0, a0, 5
        eld  a1, 8(a0)
        ersw a1, a0, e7
        eaddix e3, e4, -16
        ecall
    "#;
    let img = assemble(0x0, src).unwrap();
    let listing: Vec<String> = img
        .words
        .iter()
        .map(|&w| xbgas::isa::disasm_word(w))
        .collect();
    let round = assemble(0x0, &listing.join("\n")).unwrap();
    assert_eq!(round.words, img.words);

    // Category check along the way.
    let cats: Vec<InstCategory> = img
        .words
        .iter()
        .map(|&w| decode(w).unwrap().category())
        .collect();
    assert_eq!(
        cats,
        vec![
            InstCategory::Base,
            InstCategory::XbgasBaseLoadStore,
            InstCategory::XbgasRawLoadStore,
            InstCategory::XbgasAddressManagement,
            InstCategory::Base,
        ]
    );
}

#[test]
fn twelve_core_paper_machine_runs_spmd() {
    // The paper's environment is 12 cores (§5.1); run an SPMD kernel on the
    // full configuration with the paper cost model.
    let mut m = Machine::new(MachineConfig::paper());
    let img = assemble(
        0x1000,
        r#"
        li   a7, 2
        ecall
        mv   s0, a0
        li   a7, 3
        ecall                   # a0 = num_pes
        mv   s1, a0
        # every PE stores its rank into PE0's array slot (rank*8)
        slli t0, s0, 3
        lui  t1, 0x8
        add  t1, t1, t0
        eaddie e6, zero, 1      # object 1 = PE0
        esd  s0, 0(t1)
        li   a7, 4
        ecall
        li   a7, 0
        ecall
        "#,
    )
    .unwrap();
    m.load_program(0x1000, &img.words);
    let s = m.run();
    assert_eq!(s.exit, RunExit::AllHalted);
    for pe in 0..12 {
        assert_eq!(
            m.mem(0).load_u64(0x8000 + 8 * pe as u64).unwrap(),
            pe as u64
        );
    }
    // Remote stores: 11 PEs crossed the fabric (PE0's own was via OLB
    // object 1, which still names PE0 → counted as a translated access
    // but not a NoC transaction... it resolves to PE0 itself).
    assert!(m.noc_stats().transactions >= 11);
}
