//! Differential suite: the block-translation engine vs the interpretive
//! stepper.
//!
//! Every kernel here runs twice — once on `ExecMode::Interp` (the oracle)
//! and once on `ExecMode::Block` — and the two machines must finish in
//! **bit-identical** states: exit reason, per-hart `pc`, both register
//! files, `cycles`, `instret`, hart state, console output, NoC statistics
//! and every byte of every PE's memory. This is the contract that lets the
//! block engine replace the stepper for benchmarking without changing any
//! simulated result.

use xbgas_sim::asm::assemble;
use xbgas_sim::cost::{CostConfig, ExecMode, MachineConfig};
use xbgas_sim::hart::SimFault;
use xbgas_sim::machine::{Machine, RunExit};

/// Build, run and compare the two engines on the same initial machine.
/// `setup` is applied identically to both (program load, memory seeding).
fn differential(what: &str, cfg: MachineConfig, setup: impl Fn(&mut Machine)) -> RunExit {
    assert_eq!(cfg.exec, ExecMode::Interp, "pass the base config");
    let mut interp = Machine::new(cfg);
    setup(&mut interp);
    let si = interp.run();

    let mut block = Machine::new(cfg.with_block_engine());
    setup(&mut block);
    let sb = block.run();

    assert_eq!(si.exit, sb.exit, "{what}: exit reason diverged");
    assert_eq!(si.cycles, sb.cycles, "{what}: summary cycles diverged");
    assert_eq!(si.instret, sb.instret, "{what}: summary instret diverged");
    for pe in 0..interp.n_harts() {
        let (hi, hb) = (interp.hart(pe), block.hart(pe));
        assert_eq!(hi.pc, hb.pc, "{what}: pe{pe} pc diverged");
        assert_eq!(hi.x, hb.x, "{what}: pe{pe} x register file diverged");
        assert_eq!(hi.e, hb.e, "{what}: pe{pe} e register file diverged");
        assert_eq!(hi.cycles, hb.cycles, "{what}: pe{pe} cycles diverged");
        assert_eq!(hi.instret, hb.instret, "{what}: pe{pe} instret diverged");
        assert_eq!(hi.state, hb.state, "{what}: pe{pe} state diverged");
        assert_eq!(
            interp.output(pe),
            block.output(pe),
            "{what}: pe{pe} console output diverged"
        );
        let sz = interp.mem(pe).size();
        assert_eq!(sz, block.mem(pe).size());
        assert_eq!(
            interp.mem(pe).read_bytes(0, sz).unwrap(),
            block.mem(pe).read_bytes(0, sz).unwrap(),
            "{what}: pe{pe} memory diverged"
        );
    }
    let (ni, nb) = (interp.noc_stats(), block.noc_stats());
    assert_eq!(ni.transactions, nb.transactions, "{what}: noc transactions");
    assert_eq!(ni.bytes, nb.bytes, "{what}: noc bytes");
    si.exit
}

fn asm_setup(src: &'static str) -> impl Fn(&mut Machine) {
    move |m: &mut Machine| {
        let img = assemble(0x1000, src).unwrap();
        m.load_program(0x1000, &img.words);
    }
}

/// test(n) but with the paper's timing calibration (TLB walks, cache
/// hierarchy, 200-cycle DRAM, a real interconnect) so the differential also
/// covers every memory-model code path.
fn paper_cost(n: usize) -> MachineConfig {
    let mut cfg = MachineConfig::test(n);
    cfg.cost = CostConfig::paper();
    cfg
}

/// The GUPS inner loop: xorshift RNG, masked index, 8-byte read-modify-write
/// — exercises ShiftXor, LoadOpStore, AddiBranch and Li fusion.
const GUPS: &str = r#"
    li   s1, 0x2545F491     # rng state
    li   s2, 0x3ff          # table mask (1024 entries)
    li   s3, 0x8000         # table base
    li   s0, 2000           # updates
loop:
    slli t0, s1, 13
    xor  s1, s1, t0
    srli t0, s1, 7
    xor  s1, s1, t0
    slli t0, s1, 17
    xor  s1, s1, t0
    and  t1, s1, s2
    slli t1, t1, 3
    add  t2, s3, t1
    ld   t3, 0(t2)
    xor  t3, t3, s1
    sd   t3, 0(t2)
    addi s0, s0, -1
    bnez s0, loop
    li   a7, 0
    ecall
"#;

/// IS-style bucket counting: generate keys with the RNG, then histogram
/// the low bits — a second loop shape with lw/andi and blt back-edge.
const IS_RANK: &str = r#"
    li   s1, 0x12345        # rng state
    li   s2, 0x8000         # keys base
    li   s0, 1024           # key count
gen:
    slli t0, s1, 13
    xor  s1, s1, t0
    srli t0, s1, 7
    xor  s1, s1, t0
    slli t0, s1, 17
    xor  s1, s1, t0
    sw   s1, 0(s2)
    addi s2, s2, 4
    addi s0, s0, -1
    bnez s0, gen
    li   s2, 0x8000
    li   s3, 0xC000         # counts base
    li   s0, 1024
rank:
    lw   t1, 0(s2)
    andi t2, t1, 255
    slli t2, t2, 3
    add  t2, s3, t2
    ld   t3, 0(t2)
    addi t3, t3, 1
    sd   t3, 0(t2)
    addi s2, s2, 4
    addi s0, s0, -1
    bnez s0, rank
    li   a7, 0
    ecall
"#;

#[test]
fn gups_functional() {
    let exit = differential("gups/functional", MachineConfig::test(1), asm_setup(GUPS));
    assert_eq!(exit, RunExit::AllHalted);
}

#[test]
fn gups_paper_timing() {
    let exit = differential("gups/paper", paper_cost(1), asm_setup(GUPS));
    assert_eq!(exit, RunExit::AllHalted);
}

#[test]
fn is_rank_functional() {
    let exit = differential("is/functional", MachineConfig::test(1), asm_setup(IS_RANK));
    assert_eq!(exit, RunExit::AllHalted);
}

#[test]
fn is_rank_paper_timing() {
    let exit = differential("is/paper", paper_cost(1), asm_setup(IS_RANK));
    assert_eq!(exit, RunExit::AllHalted);
}

/// SPMD ring exchange over the fabric with a barrier — remote stores,
/// OLB translation, channel occupancy and barrier release timing.
const RING: &str = r#"
    li   a7, 2
    ecall                   # a0 = my_pe
    addi t2, a0, 1
    li   t3, 4
    rem  t2, t2, t3
    addi t2, t2, 1          # neighbour object id
    lui  t0, 0x8
    eaddie e5, t2, 0
    li   t4, 7
    mul  t4, t4, a0
    addi s0, t4, 20         # per-PE iteration count: 20 + 7*my_pe
loop:
    esd  s0, 0(t0)
    addi s0, s0, -1
    bnez s0, loop
    li   a7, 4
    ecall
    li   a7, 0
    ecall
"#;

#[test]
fn ring_exchange_skewed_paper_timing() {
    let exit = differential("ring/skewed", paper_cost(4), asm_setup(RING));
    assert_eq!(exit, RunExit::AllHalted);
}

/// Same ring but with identical per-PE timing: the scheduler ties on every
/// step, so this pins the block engine's tie-break horizon (`< lo`,
/// `<= hi`) against the interpreter's first-index `min_by_key`.
const RING_TIED: &str = r#"
    li   a7, 2
    ecall
    addi t2, a0, 1
    li   t3, 3
    rem  t2, t2, t3
    addi t2, t2, 1
    lui  t0, 0x8
    eaddie e5, t2, 0
    li   s0, 40
loop:
    esd  s0, 0(t0)
    addi s0, s0, -1
    bnez s0, loop
    li   a7, 4
    ecall
    li   a7, 0
    ecall
"#;

#[test]
fn ring_exchange_tied_paper_timing() {
    let exit = differential("ring/tied", paper_cost(3), asm_setup(RING_TIED));
    assert_eq!(exit, RunExit::AllHalted);
}

#[test]
fn ring_exchange_tied_functional() {
    let exit = differential(
        "ring/tied-functional",
        MachineConfig::test(3),
        asm_setup(RING_TIED),
    );
    assert_eq!(exit, RunExit::AllHalted);
}

/// Pointer-chasing through the extended register file (erle + erld) plus
/// erse — the raw xBGAS group, all through the Generic path.
const DIRECTORY: &str = r#"
    li   a7, 2
    ecall
    bnez a0, follower
    eaddie e8, zero, 2      # e8 names PE1 (the directory host)
    lui  t0, 0x8
    erle e9, t0, e8         # e9 = directory[0] = object 2
    lui  t1, 0x9
    erld a0, t1, e9         # follow the pointer
    eaddie e7, a0, 0        # e7 = loaded payload
    lui  t2, 0xA
    erse e7, t2, e8         # write it back to PE1 at 0xA000
follower:
    li   a7, 4
    ecall
    li   a7, 0
    ecall
"#;

#[test]
fn directory_pointer_chase() {
    let exit = differential("directory", paper_cost(2), |m| {
        let img = assemble(0x1000, DIRECTORY).unwrap();
        m.load_program(0x1000, &img.words);
        m.mem_mut(1).store_u64(0x8000, 2).unwrap();
        m.mem_mut(1).store_u64(0x9000, 777).unwrap();
    });
    assert_eq!(exit, RunExit::AllHalted);
}

/// Call/return through jal+jalr, console syscalls, CSR self-timing and the
/// address-management group — the Generic and control paths.
const MIXED: &str = r#"
    rdcycle s4
    li   a0, 10
    call fib
    mv   s5, a0
    rdcycle s6
    sub  s6, s6, s4         # elapsed cycles
    rdinstret s7
    li   a0, 72             # 'H'
    li   a7, 1
    ecall
    mv   a0, s5
    li   a7, 5
    ecall                   # print fib(10)
    eaddie e4, s5, 11
    eaddix e6, e4, -1
    eaddi  s8, e6, 5
    fence
    li   a7, 0
    ecall
fib:
    li   t0, 0
    li   t1, 1
    li   t2, 0
fib_loop:
    beqz a0, fib_done
    add  t2, t0, t1
    mv   t0, t1
    mv   t1, t2
    addi a0, a0, -1
    j    fib_loop
fib_done:
    mv   a0, t0
    ret
"#;

#[test]
fn mixed_control_csr_console() {
    for cfg in [MachineConfig::test(1), paper_cost(1)] {
        let exit = differential("mixed", cfg, asm_setup(MIXED));
        assert_eq!(exit, RunExit::AllHalted);
    }
}

/// A jump lands in the *middle* of a lui+addi pair that elsewhere executes
/// fused — the block engine must translate an overlapping block at the
/// mid-span entry pc.
const MIDSPAN: &str = r#"
    li   s0, 7
    j    mid
    lui  s0, 0x8            # dead when entered via `mid`
mid:
    addi s0, s0, 4          # s0 = 11
    lui  s1, 0x8
    addi s1, s1, 4          # the same pair, fused and fully executed
    li   a7, 0
    ecall
"#;

#[test]
fn jump_into_fused_span() {
    let exit = differential("midspan", MachineConfig::test(1), asm_setup(MIDSPAN));
    assert_eq!(exit, RunExit::AllHalted);
}

/// Straight-line code longer than a single translated block (the 64-inst
/// cap): execution must fall through from one block into the next.
#[test]
fn long_straight_line_crosses_block_cap() {
    let mut src = String::new();
    for _ in 0..150 {
        src.push_str("    addi a0, a0, 1\n");
    }
    src.push_str("    li a7, 0\n    ecall\n");
    let src: &'static str = Box::leak(src.into_boxed_str());
    let exit = differential("long-line", MachineConfig::test(1), asm_setup(src));
    assert_eq!(exit, RunExit::AllHalted);
}

/// ebreak must retire like ecall on both engines: cost charged, instret
/// bumped, pc left at the ebreak, then the Breakpoint fault delivered.
#[test]
fn ebreak_retires_consistently() {
    let exit = differential(
        "ebreak",
        MachineConfig::test(1),
        asm_setup("nop\nnop\nebreak\nnop"),
    );
    assert!(
        matches!(
            exit,
            RunExit::Fault {
                pe: 0,
                fault: SimFault::Breakpoint { pc: 0x1008 }
            }
        ),
        "got {exit:?}"
    );
}

/// Misaligned jalr target: precise InstructionMisaligned fault on both
/// engines, with the link register left unwritten.
#[test]
fn misaligned_jalr_faults_identically() {
    let src = "li t0, 0x1002\njalr ra, 0(t0)\nli a7, 0\necall";
    let exit = differential("misaligned-jalr", MachineConfig::test(1), asm_setup(src));
    match exit {
        RunExit::Fault {
            pe: 0,
            fault: SimFault::InstructionMisaligned { target: 0x1002, .. },
        } => {}
        other => panic!("expected misaligned fault, got {other:?}"),
    }
}

/// Misaligned jal and taken-branch targets (offset ≡ 2 mod 4), hand-encoded
/// because the assembler only emits aligned label offsets.
#[test]
fn misaligned_jal_and_branch_fault_identically() {
    use xbgas_isa::{encode, BranchCond, Inst, XReg};
    for (what, inst) in [
        (
            "jal",
            Inst::Jal {
                rd: XReg::RA,
                offset: 6,
            },
        ),
        (
            "branch",
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: XReg::ZERO,
                rs2: XReg::ZERO,
                offset: 6,
            },
        ),
    ] {
        let words = [encode(&inst).unwrap()];
        let exit = differential(what, MachineConfig::test(1), move |m| {
            m.load_program(0x1000, &words);
        });
        match exit {
            RunExit::Fault {
                pe: 0,
                fault:
                    SimFault::InstructionMisaligned {
                        pc: 0x1000,
                        target: 0x1006,
                    },
            } => {}
            other => panic!("{what}: expected misaligned fault, got {other:?}"),
        }
    }
}

/// A tight self-loop against an odd cycle budget: both engines must stop on
/// exactly the same cycle count at the CycleLimit boundary.
#[test]
fn cycle_limit_boundary() {
    let mut cfg = MachineConfig::test(1);
    cfg.max_cycles = 997;
    let exit = differential("cycle-limit", cfg, asm_setup("loop:\n    j loop"));
    assert_eq!(exit, RunExit::CycleLimit);
}

/// An unmapped-object OLB miss mid-kernel faults identically.
#[test]
fn olb_miss_faults_identically() {
    let src = "eset e5, 99\neld a0, 0(t0)\nli a7, 0\necall";
    let exit = differential("olb-miss", MachineConfig::test(1), asm_setup(src));
    assert!(
        matches!(
            exit,
            RunExit::Fault {
                pe: 0,
                fault: SimFault::OlbMiss { object_id: 99, .. }
            }
        ),
        "got {exit:?}"
    );
}

/// Undecodable word reached by fall-through: the block engine's
/// single-step fallback must reproduce the interpreter's fault exactly.
#[test]
fn illegal_instruction_fall_through() {
    let exit = differential(
        "illegal",
        MachineConfig::test(1),
        asm_setup("li t0, 3\nli t1, 4\nadd t2, t0, t1\n.word 0xffffffff"),
    );
    assert!(
        matches!(
            exit,
            RunExit::Fault {
                pe: 0,
                fault: SimFault::IllegalInstruction { pc: 0x100c, .. }
            }
        ),
        "got {exit:?}"
    );
}

/// The eaddie + remote-load fused pair, including a mid-pair use where the
/// loaded object id addresses a second PE.
const EADDIE_PAIR: &str = r#"
    li   a7, 2
    ecall
    bnez a0, follower
    li   t0, 0x8000
    eaddie e5, zero, 2      # fused with the following eld
    eld  s0, 0(t0)          # s0 = PE1's 0x8000
    li   t1, 0x9000
    li   t2, 2
    eaddie e9, t2, 0        # fused with the following erld
    erld s1, t1, e9         # s1 = PE1's 0x9000
    add  s2, s0, s1
follower:
    li   a7, 4
    ecall
    li   a7, 0
    ecall
"#;

#[test]
fn eaddie_remote_load_pair() {
    let exit = differential("eaddie-pair", paper_cost(2), |m| {
        let img = assemble(0x1000, EADDIE_PAIR).unwrap();
        m.load_program(0x1000, &img.words);
        m.mem_mut(1).store_u64(0x8000, 40).unwrap();
        m.mem_mut(1).store_u64(0x9000, 2).unwrap();
    });
    assert_eq!(exit, RunExit::AllHalted);
}

/// Barrier deadlock shape: PE1 halts before the barrier, PE0 then owns it.
#[test]
fn barrier_after_peer_halt() {
    let exit = differential("barrier-halt", MachineConfig::test(2), |m| {
        let a = assemble(0x1000, "li a7, 4\necall\nli a7, 0\necall").unwrap();
        let b = assemble(0x1000, "li a7, 0\necall").unwrap();
        m.load_words(0, 0x1000, &a.words);
        m.load_words(1, 0x1000, &b.words);
        m.hart_mut(0).pc = 0x1000;
        m.hart_mut(1).pc = 0x1000;
    });
    assert_eq!(exit, RunExit::AllHalted);
}
