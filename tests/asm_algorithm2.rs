//! Paper Algorithm 2 (binomial-tree reduction) in xBGAS assembly on the
//! instruction-level machine: the ascending mask loop, recursive doubling,
//! and the get-side of the ISA (`erld`) pulling partners' partial sums.
//!
//! Together with `asm_algorithm1.rs` this covers both data-flow directions
//! of the paper's tree: root→leaves via remote stores, leaves→root via
//! remote loads.

use xbgas::sim::asm::assemble;
use xbgas::sim::cost::MachineConfig;
use xbgas::sim::hart::HartState;
use xbgas::sim::machine::{Machine, RunExit};

/// Algorithm 2 (sum reduction of 4 u64 words) in assembly.
/// Register plan:
///   s0 = log_rank   s1 = n_pes   s2 = root   s3 = vir_rank
///   s4 = stages     s5 = mask    s6 = i      s8 = nelems
/// Shared buffer (s_buff) at 0x8000; each PE's contribution is pre-seeded
/// there by the harness (the "load s_buff from src" step of the paper).
const ALGORITHM2: &str = r#"
    li   a7, 2
    ecall
    mv   s0, a0
    li   a7, 3
    ecall
    mv   s1, a0
    li   s2, ROOT
    li   s8, 4              # nelems

    # vir_rank
    blt  s0, s2, wrap
    sub  s3, s0, s2
    j    vr_done
wrap:
    add  s3, s0, s1
    sub  s3, s3, s2
vr_done:

    # stages = ceil(log2 n)
    li   s4, 0
    li   t0, 1
stages_loop:
    bge  t0, s1, stages_done
    slli t0, t0, 1
    addi s4, s4, 1
    j    stages_loop
stages_done:

    li   t0, 1
    sll  t0, t0, s4
    addi s5, t0, -1         # mask = (1 << stages) - 1

    li   s6, 0              # i = 0, ascending (recursive doubling)
stage_loop:
    bge  s6, s4, fini

    # mask ^= (1 << i)
    li   t0, 1
    sll  t0, t0, s6
    xor  s5, s5, t0

    # if (vir_rank | mask) != mask: consumed in an earlier stage
    or   t1, s3, s5
    bne  t1, s5, stage_barrier
    # if (vir_rank & (1 << i)) != 0: this PE is the passive partner
    and  t1, s3, t0
    bnez t1, stage_barrier

    # vir_part = (vir_rank ^ (1 << i)) % n_pes; require vir_rank < vir_part
    xor  t2, s3, t0
    rem  t2, t2, s1
    bge  s3, t2, stage_barrier

    # log_part = (vir_part + root) % n_pes; object ID = log_part + 1
    add  t3, t2, s2
    rem  t3, t3, s1
    addi t4, t3, 1
    eaddie e7, t4, 0        # e7 holds the partner's object ID

    # get partner's s_buff and fold: s_buff[j] += partner_s_buff[j]
    mv   t5, s8
    lui  a2, 0x8            # local cursor (s_buff)
    lui  t2, 0x8            # remote cursor via x7/e7
fold_loop:
    beqz t5, stage_barrier
    erld a4, t2, e7         # remote load of the partner's partial
    ld   a5, 0(a2)
    add  a5, a5, a4
    sd   a5, 0(a2)
    addi a2, a2, 8
    addi t2, t2, 8
    addi t5, t5, -1
    j    fold_loop

stage_barrier:
    li   a7, 4
    ecall
    addi s6, s6, 1
    j    stage_loop

fini:
    # exit code = s_buff[0] (meaningful on the root only)
    lui  t0, 0x8
    ld   a0, 0(t0)
    li   a7, 0
    ecall
"#;

fn run_asm_reduce(n_pes: usize, root: usize) -> (Machine, Vec<u64>) {
    let mut cfg = MachineConfig::test(n_pes);
    cfg.max_cycles = 50_000_000;
    let mut m = Machine::new(cfg);
    let src = ALGORITHM2.replace("ROOT", &root.to_string());
    let img = assemble(0x1000, &src).expect("Algorithm 2 must assemble");
    m.load_program(0x1000, &img.words);
    // Seed every PE's contribution: s_buff[j] = (rank+1) * 10^0.. pattern.
    for pe in 0..n_pes {
        for j in 0..4u64 {
            m.mem_mut(pe)
                .store_u64(0x8000 + 8 * j, (pe as u64 + 1) * 100 + j)
                .unwrap();
        }
    }
    let s = m.run();
    assert_eq!(
        s.exit,
        RunExit::AllHalted,
        "n={n_pes} root={root}: {:?}",
        s.exit
    );
    let codes = (0..n_pes)
        .map(|pe| match m.hart(pe).state {
            HartState::Halted { code } => code,
            ref other => panic!("PE {pe}: {other:?}"),
        })
        .collect();
    (m, codes)
}

#[test]
fn assembly_reduction_sums_all_contributions() {
    for (n, root) in [(2usize, 0usize), (4, 0), (4, 3), (7, 4), (8, 5), (5, 2)] {
        let (m, codes) = run_asm_reduce(n, root);
        for j in 0..4u64 {
            let expect: u64 = (1..=n as u64).map(|r| r * 100 + j).sum();
            assert_eq!(
                m.mem(root).load_u64(0x8000 + 8 * j).unwrap(),
                expect,
                "n={n} root={root} elem={j}"
            );
        }
        // The root's exit code is the word-0 sum.
        let expect0: u64 = (1..=n as u64).map(|r| r * 100).sum();
        assert_eq!(codes[root], expect0);
    }
}

#[test]
fn assembly_reduction_matches_runtime_reduce() {
    use xbgas::xbrtime::{collectives, Fabric, FabricConfig, ReduceOp};
    let (n, root) = (7usize, 4usize);
    let (m, _) = run_asm_reduce(n, root);

    let report = Fabric::run(FabricConfig::new(n), move |pe| {
        let src = pe.shared_malloc::<u64>(4);
        let mine: Vec<u64> = (0..4).map(|j| (pe.rank() as u64 + 1) * 100 + j).collect();
        pe.heap_write(src.whole(), &mine);
        pe.barrier();
        let mut out = [0u64; 4];
        collectives::reduce(pe, &mut out, &src, 4, 1, root, ReduceOp::Sum);
        pe.barrier();
        out
    });
    let isa: Vec<u64> = (0..4u64)
        .map(|j| m.mem(root).load_u64(0x8000 + 8 * j).unwrap())
        .collect();
    assert_eq!(isa, report.results[root].to_vec());
}
