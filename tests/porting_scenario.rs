//! The paper's §5.2 porting methodology, as a test: take an
//! OpenSHMEM-style program and "replace only OpenSHMEM library calls with
//! their xBGAS equivalents" — both versions must compute identical
//! results on the same fabric.
//!
//! The program is a distributed dot-product with a broadcast of the
//! result — the reduce+broadcast round trip the paper's benchmarks lean
//! on.

use xbgas::xbrtime::collectives;
use xbgas::xbrtime::shmem::{self, ActiveSet};
use xbgas::xbrtime::{Fabric, FabricConfig, Pe, ReduceOp};

const N_PES: usize = 6;
const CHUNK: usize = 512;

fn local_vectors(rank: usize) -> (Vec<i64>, Vec<i64>) {
    let a: Vec<i64> = (0..CHUNK)
        .map(|i| ((rank * CHUNK + i) % 17) as i64 - 8)
        .collect();
    let b: Vec<i64> = (0..CHUNK)
        .map(|i| ((rank * CHUNK + i) % 23) as i64 - 11)
        .collect();
    (a, b)
}

/// The OpenSHMEM version: `sum_to_all` over the world active set.
fn dot_shmem(pe: &Pe) -> i64 {
    let (a, b) = local_vectors(pe.rank());
    let partial: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    let src = pe.shared_malloc::<i64>(1);
    let dest = pe.shared_malloc::<i64>(1);
    pe.heap_store(src.whole(), partial);
    pe.barrier();
    shmem::to_all(
        pe,
        &dest,
        &src,
        1,
        ReduceOp::Sum,
        &ActiveSet::world(pe.n_pes()),
    );
    let out = pe.heap_load(dest.whole());
    pe.barrier();
    pe.shared_free(dest);
    pe.shared_free(src);
    out
}

/// The xBGAS port: rooted reduction + explicit broadcast (paper §4.7: the
/// distributed result "must instead be accomplished through the use of a
/// broadcast operation following the original call").
fn dot_xbgas(pe: &Pe) -> i64 {
    let (a, b) = local_vectors(pe.rank());
    let partial: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    let src = pe.shared_malloc::<i64>(1);
    pe.heap_store(src.whole(), partial);
    pe.barrier();
    let mut total = [0i64];
    collectives::reduce(pe, &mut total, &src, 1, 1, 0, ReduceOp::Sum);
    let bcast = pe.shared_malloc::<i64>(1);
    collectives::broadcast(pe, &bcast, &total, 1, 1, 0);
    pe.barrier();
    let out = pe.heap_load(bcast.whole());
    pe.barrier();
    pe.shared_free(bcast);
    pe.shared_free(src);
    out
}

#[test]
fn shmem_and_xbgas_ports_agree() {
    let report = Fabric::run(FabricConfig::new(N_PES), |pe| {
        let shmem_result = dot_shmem(pe);
        let xbgas_result = dot_xbgas(pe);
        (shmem_result, xbgas_result)
    });

    // Sequential oracle.
    let expect: i64 = (0..N_PES)
        .map(|r| {
            let (a, b) = local_vectors(r);
            a.iter().zip(&b).map(|(x, y)| x * y).sum::<i64>()
        })
        .sum();

    for (rank, &(s, x)) in report.results.iter().enumerate() {
        assert_eq!(s, expect, "shmem port on rank {rank}");
        assert_eq!(x, expect, "xbgas port on rank {rank}");
    }
}

#[test]
fn typed_api_port_matches_generic() {
    // The same dot product through the explicit Table 1 API (the paper's
    // preferred interface for developers without type-size background).
    use xbgas::xbrtime::typed;
    let report = Fabric::run(FabricConfig::new(4), |pe| {
        let (a, b) = local_vectors(pe.rank());
        let partial: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let src = pe.shared_malloc::<i64>(1);
        pe.heap_store(src.whole(), partial);
        pe.barrier();
        let mut total = [0i64];
        typed::longlong::reduce_sum(pe, &mut total, &src, 1, 1, 0);
        pe.barrier();
        total[0]
    });
    let expect: i64 = (0..4)
        .map(|r| {
            let (a, b) = local_vectors(r);
            a.iter().zip(&b).map(|(x, y)| x * y).sum::<i64>()
        })
        .sum();
    assert_eq!(report.results[0], expect);
}
