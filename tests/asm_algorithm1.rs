//! Paper Algorithm 1 (binomial-tree broadcast), implemented in xBGAS
//! *assembly* and executed on the instruction-level machine — the
//! collective exactly as the runtime library lowers it: virtual-rank
//! rotation, the descending mask loop, partner arithmetic, a remote-put
//! loop built from `esd`, and a barrier per tree stage.
//!
//! This is the deepest fidelity check in the repository: the same
//! algorithm the Rust runtime implements (`xbrtime::collectives::broadcast`)
//! is hand-lowered to the ISA of paper §3.2 and must deliver the same
//! bytes.

use xbgas::sim::asm::assemble;
use xbgas::sim::cost::MachineConfig;
use xbgas::sim::machine::{Machine, RunExit};

/// Algorithm 1 in assembly. Register plan:
///   s0 = log_rank     s1 = n_pes        s2 = root
///   s3 = vir_rank     s4 = stages       s5 = mask
///   s6 = loop index i s7 = data base (0x8000)
///   s8 = nelems
/// The payload lives at 0x8000 (8 u64 words); the root's source values are
/// pre-seeded there by the test harness before the run.
const ALGORITHM1: &str = r#"
    li   a7, 2
    ecall
    mv   s0, a0             # log_rank
    li   a7, 3
    ecall
    mv   s1, a0             # n_pes
    li   s2, ROOT           # root (patched by the test)
    lui  s7, 0x8            # payload base
    li   s8, 8              # nelems

    # vir_rank = (log_rank >= root) ? log_rank - root : log_rank + n_pes - root
    blt  s0, s2, wrap
    sub  s3, s0, s2
    j    vr_done
wrap:
    add  s3, s0, s1
    sub  s3, s3, s2
vr_done:

    # stages = ceil(log2(n_pes)): smallest k with (1 << k) >= n_pes
    li   s4, 0
    li   t0, 1
stages_loop:
    bge  t0, s1, stages_done
    slli t0, t0, 1
    addi s4, s4, 1
    j    stages_loop
stages_done:

    # mask = (1 << stages) - 1
    li   t0, 1
    sll  t0, t0, s4
    addi s5, t0, -1

    # for i = stages-1 downto 0
    addi s6, s4, -1
stage_loop:
    blt  s6, zero, done

    # mask ^= (1 << i)
    li   t0, 1
    sll  t0, t0, s6
    xor  s5, s5, t0

    # if (vir_rank & mask) != 0: not a participant this stage
    and  t1, s3, s5
    bnez t1, stage_barrier
    # if (vir_rank & (1 << i)) != 0: receiver, not sender
    and  t1, s3, t0
    bnez t1, stage_barrier

    # vir_part = (vir_rank ^ (1 << i)) % n_pes
    xor  t2, s3, t0
    rem  t2, t2, s1
    # if !(vir_rank < vir_part): skip (non-power-of-two guard)
    bge  s3, t2, stage_barrier

    # log_part = (vir_part + root) % n_pes
    add  t3, t2, s2
    rem  t3, t3, s1

    # put(dest, src, nelems): an esd loop addressing the partner through
    # e7 — the extended register naturally paired with t2 (x7).
    addi t4, t3, 1          # object ID = partner + 1
    eaddie e7, t4, 0
    mv   t5, s8             # element count
    lui  a2, 0x8            # a2 = local read cursor
    lui  a3, 0x8            # a3 = remote write cursor (symmetric offsets)
put_loop:
    beqz t5, put_done
    ld   a4, 0(a2)          # local load
    mv   t2, a3             # t2 = x7: remote address through e7
    esd  a4, 0(t2)          # remote store to partner
    addi a2, a2, 8
    addi a3, a3, 8
    addi t5, t5, -1
    j    put_loop
put_done:

stage_barrier:
    li   a7, 4
    ecall                   # barrier closes the stage (paper §4.3)
    addi s6, s6, -1
    j    stage_loop

done:
    # return payload[0] + payload[7] as a cheap checksum in the exit code
    lui  t0, 0x8
    ld   a0, 0(t0)
    ld   t1, 56(t0)
    add  a0, a0, t1
    li   a7, 0
    ecall
"#;

fn run_asm_broadcast(n_pes: usize, root: usize) -> Machine {
    let mut cfg = MachineConfig::test(n_pes);
    cfg.max_cycles = 50_000_000;
    let mut m = Machine::new(cfg);
    let src = ALGORITHM1.replace("ROOT", &root.to_string());
    let img = assemble(0x1000, &src).expect("Algorithm 1 must assemble");
    m.load_program(0x1000, &img.words);
    // Seed the payload on the root only.
    for j in 0..8u64 {
        m.mem_mut(root).store_u64(0x8000 + 8 * j, 1000 + j).unwrap();
    }
    let s = m.run();
    assert_eq!(
        s.exit,
        RunExit::AllHalted,
        "n={n_pes} root={root}: {:?}",
        s.exit
    );
    m
}

#[test]
fn assembly_broadcast_delivers_to_all_pes() {
    for (n, root) in [(2usize, 0usize), (4, 0), (4, 2), (7, 4), (8, 3), (5, 1)] {
        let m = run_asm_broadcast(n, root);
        for pe in 0..n {
            for j in 0..8u64 {
                assert_eq!(
                    m.mem(pe).load_u64(0x8000 + 8 * j).unwrap(),
                    1000 + j,
                    "n={n} root={root} pe={pe} word={j}"
                );
            }
        }
    }
}

#[test]
fn assembly_broadcast_matches_runtime_broadcast() {
    // Same configuration through both layers; identical delivered bytes.
    use xbgas::xbrtime::{collectives, Fabric, FabricConfig};
    let (n, root) = (7usize, 4usize);

    let m = run_asm_broadcast(n, root);
    let report = Fabric::run(FabricConfig::new(n), move |pe| {
        let dest = pe.shared_malloc::<u64>(8);
        let src: Vec<u64> = (1000..1008).collect();
        collectives::broadcast(pe, &dest, &src, 8, 1, root);
        pe.barrier();
        pe.heap_read_vec::<u64>(dest.whole(), 8)
    });
    for pe in 0..n {
        let isa_bytes: Vec<u64> = (0..8u64)
            .map(|j| m.mem(pe).load_u64(0x8000 + 8 * j).unwrap())
            .collect();
        assert_eq!(isa_bytes, report.results[pe], "pe={pe}");
    }
}

#[test]
fn assembly_broadcast_uses_binomial_transaction_count() {
    // n-1 remote puts of 8 words each = 8*(n-1) fabric transactions.
    let n = 8;
    let m = run_asm_broadcast(n, 0);
    assert_eq!(m.noc_stats().transactions, 8 * (n as u64 - 1));
}
