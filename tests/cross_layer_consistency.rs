//! Consistency between the two execution layers: the instruction-level
//! machine and the thread-per-PE runtime share one cost model
//! (`CostConfig::paper()`), so the same logical operation must cost the
//! same order of cycles in both — the property that lets the runtime's
//! figures stand in for instruction-level simulation.

use xbgas::sim::asm::assemble;
use xbgas::sim::cost::MachineConfig;
use xbgas::sim::machine::{Machine, RunExit};
use xbgas::xbrtime::{Fabric, FabricConfig};

/// Cycles for one warm remote 64-bit load at the ISA level (eld via OLB).
fn isa_remote_load_cycles() -> u64 {
    // Measure by running two programs differing by exactly one (warm) eld.
    let prog = |n_loads: usize| {
        let mut asm = String::from("lui t0, 0x8\neaddie e5, zero, 2\n");
        for _ in 0..n_loads {
            asm.push_str("eld a0, 0(t0)\n");
        }
        asm.push_str("li a7, 0\necall\n");
        asm
    };
    let run = |n_loads: usize| {
        let mut cfg = MachineConfig::paper();
        cfg.n_harts = 2;
        let mut m2 = Machine::new(cfg);
        let img = assemble(0x1000, &prog(n_loads)).unwrap();
        m2.load_words(0, 0x1000, &img.words);
        let exit = assemble(0x1000, "li a7, 0\necall").unwrap();
        m2.load_words(1, 0x1000, &exit.words);
        let s = m2.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        s.cycles[0]
    };
    run(3) - run(2)
}

/// Cycles for one warm remote 64-bit get at the runtime level.
fn runtime_remote_get_cycles() -> u64 {
    let report = Fabric::run(FabricConfig::paper(2), |pe| {
        let buf = pe.shared_malloc::<u64>(1);
        pe.barrier();
        let mut v = [0u64];
        let mut measured = 0;
        if pe.rank() == 0 {
            pe.get(&mut v, buf.whole(), 1, 1, 1); // warm
            let t0 = pe.cycles();
            pe.get(&mut v, buf.whole(), 1, 1, 1);
            measured = pe.cycles() - t0;
        }
        pe.barrier();
        measured
    });
    report.results[0]
}

#[test]
fn remote_word_access_costs_agree_across_layers() {
    let isa = isa_remote_load_cycles();
    let runtime = runtime_remote_get_cycles();
    // Same constants (OLB + occupancy + flight + remote DRAM) plus
    // layer-specific overheads (fetch/decode vs per-element software):
    // they must agree within 2x, not merely within an order of magnitude.
    let ratio = isa as f64 / runtime as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "ISA-level eld = {isa} cycles vs runtime get = {runtime} cycles (ratio {ratio:.2})"
    );
}

#[test]
fn both_layers_charge_remote_premium_over_local() {
    // ISA level: warm local vs warm remote eld.
    let run_kernel = |remote: bool| {
        let mut cfg = MachineConfig::paper();
        cfg.n_harts = 2;
        let mut m = Machine::new(cfg);
        let target = if remote { 2 } else { 0 };
        let asm = format!(
            "lui t0, 0x8\neaddie e5, zero, {target}\n\
             eld a0, 0(t0)\neld a0, 0(t0)\neld a0, 0(t0)\n\
             li a7, 0\necall\n"
        );
        let img = assemble(0x1000, &asm).unwrap();
        m.load_words(0, 0x1000, &img.words);
        let exit = assemble(0x1000, "li a7, 0\necall").unwrap();
        m.load_words(1, 0x1000, &exit.words);
        let s = m.run();
        assert_eq!(s.exit, RunExit::AllHalted);
        s.cycles[0]
    };
    assert!(run_kernel(true) > run_kernel(false));

    // Runtime level: warm local vs warm remote get.
    let report = Fabric::run(FabricConfig::paper(2), |pe| {
        let buf = pe.shared_malloc::<u64>(1);
        pe.barrier();
        let mut v = [0u64];
        let target = 1; // remote for PE0, self for PE1
        pe.get(&mut v, buf.whole(), 1, 1, target); // warm
        let t0 = pe.cycles();
        pe.get(&mut v, buf.whole(), 1, 1, target);
        pe.cycles() - t0
    });
    assert!(report.results[0] > report.results[1]);
}
