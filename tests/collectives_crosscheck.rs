//! Cross-crate integration: the tree collectives (Algorithms 1–4) checked
//! against the linear baselines and against sequential oracles over
//! randomized configurations, through the public `xbgas` facade.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xbgas::xbrtime::collectives;
use xbgas::xbrtime::{Fabric, FabricConfig, ReduceOp};

/// Oracle for reduction: fold contributions sequentially.
fn oracle_reduce(contribs: &[Vec<i64>], f: impl Fn(i64, i64) -> i64) -> Vec<i64> {
    let mut acc = contribs[0].clone();
    for c in &contribs[1..] {
        for (a, b) in acc.iter_mut().zip(c) {
            *a = f(*a, *b);
        }
    }
    acc
}

#[test]
fn randomized_reduce_matches_oracle_and_baseline() {
    let mut rng = SmallRng::seed_from_u64(0xB10_CA57);
    for trial in 0..12 {
        let n_pes = rng.gen_range(1..=9);
        let root = rng.gen_range(0..n_pes);
        let nelems = rng.gen_range(1..=64);
        let stride = rng.gen_range(1..=3);
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][rng.gen_range(0..3)];
        let contribs: Vec<Vec<i64>> = (0..n_pes)
            .map(|_| (0..nelems).map(|_| rng.gen_range(-1000..1000)).collect())
            .collect();

        let span = (nelems - 1) * stride + 1;
        let c2 = contribs.clone();
        let report = Fabric::run(FabricConfig::new(n_pes), move |pe| {
            let src = pe.shared_malloc::<i64>(span);
            let mine = &c2[pe.rank()];
            // Place contribution at strided positions.
            let mut staged = vec![0i64; span];
            for (j, &v) in mine.iter().enumerate() {
                staged[j * stride] = v;
            }
            pe.heap_write(src.whole(), &staged);
            pe.barrier();

            let mut tree = vec![0i64; span];
            collectives::reduce(pe, &mut tree, &src, nelems, stride, root, op);
            let mut lin = vec![0i64; span];
            collectives::reduce_linear(
                pe,
                &mut lin,
                &src,
                nelems,
                stride,
                root,
                op.combiner::<i64>().unwrap(),
            );
            pe.barrier();
            (tree, lin)
        });

        let expect = oracle_reduce(&contribs, op.combiner::<i64>().unwrap());
        let (tree, lin) = &report.results[root];
        for j in 0..nelems {
            assert_eq!(
                tree[j * stride],
                expect[j],
                "trial {trial}: tree vs oracle (n={n_pes} root={root} op={op:?})"
            );
            assert_eq!(
                lin[j * stride],
                expect[j],
                "trial {trial}: linear vs oracle"
            );
        }
    }
}

#[test]
fn randomized_scatter_gather_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5CA77E2);
    for trial in 0..12 {
        let n_pes = rng.gen_range(1..=8);
        let root = rng.gen_range(0..n_pes);
        // Irregular counts, possibly zero for some PEs.
        let msgs: Vec<usize> = (0..n_pes).map(|_| rng.gen_range(0..=7)).collect();
        let nelems: usize = msgs.iter().sum();
        let disp: Vec<usize> = msgs
            .iter()
            .scan(0usize, |acc, &m| {
                let d = *acc;
                *acc += m;
                Some(d)
            })
            .collect();
        let data: Vec<u64> = (0..nelems as u64).map(|i| i * 13 + trial).collect();

        let (m2, d2, dat2) = (msgs.clone(), disp.clone(), data.clone());
        let report = Fabric::run(FabricConfig::new(n_pes), move |pe| {
            let src: Vec<u64> = if pe.rank() == root {
                dat2.clone()
            } else {
                vec![]
            };
            let my_count = m2[pe.rank()];
            let mut mine = vec![0u64; my_count.max(1)];
            collectives::scatter(pe, &mut mine, &src, &m2, &d2, nelems, root);
            pe.barrier();
            let mut back = vec![0u64; nelems.max(1)];
            collectives::gather(pe, &mut back, &mine[..my_count], &m2, &d2, nelems, root);
            pe.barrier();
            back
        });
        if nelems > 0 {
            assert_eq!(
                &report.results[root][..nelems],
                &data[..],
                "trial {trial}: scatter∘gather must be identity (n={n_pes} root={root} msgs={msgs:?})"
            );
        }
    }
}

#[test]
fn broadcast_equivalence_across_all_algorithms() {
    let mut rng = SmallRng::seed_from_u64(0xB40ADCA5);
    for _ in 0..10 {
        let n_pes = rng.gen_range(1..=9);
        let root = rng.gen_range(0..n_pes);
        let nelems = rng.gen_range(0..=40);
        let payload: Vec<u64> = (0..nelems as u64).map(|i| i ^ 0xAA).collect();

        let p2 = payload.clone();
        let report = Fabric::run(FabricConfig::new(n_pes), move |pe| {
            let a = pe.shared_malloc::<u64>(nelems.max(1));
            let b = pe.shared_malloc::<u64>(nelems.max(1));
            let c = pe.shared_malloc::<u64>(nelems.max(1));
            pe.barrier();
            collectives::broadcast(pe, &a, &p2, nelems, 1, root);
            collectives::broadcast_linear(pe, &b, &p2, nelems, 1, root);
            collectives::broadcast_ring(pe, &c, &p2, nelems, 1, root);
            pe.barrier();
            (
                pe.heap_read_vec::<u64>(a.whole(), nelems),
                pe.heap_read_vec::<u64>(b.whole(), nelems),
                pe.heap_read_vec::<u64>(c.whole(), nelems),
            )
        });
        for (rank, (a, b, c)) in report.results.iter().enumerate() {
            assert_eq!(a, &payload, "tree delivery to rank {rank}");
            assert_eq!(b, &payload, "linear delivery to rank {rank}");
            assert_eq!(c, &payload, "ring delivery to rank {rank}");
        }
    }
}

#[test]
fn composed_semantics_allreduce_equals_reduce_plus_broadcast() {
    // Paper §4.2: the four base collectives "can be combined together to
    // accomplish the semantics of several more complex operations" — check
    // the library's reduce_all against the manual composition.
    for n_pes in [1usize, 3, 4, 7] {
        let report = Fabric::run(FabricConfig::new(n_pes), move |pe| {
            let src = pe.shared_malloc::<u64>(8);
            let mine: Vec<u64> = (0..8).map(|j| (pe.rank() as u64 + 1) * (j + 1)).collect();
            pe.heap_write(src.whole(), &mine);
            pe.barrier();

            // Manual composition.
            let mut reduced = vec![0u64; 8];
            collectives::reduce(pe, &mut reduced, &src, 8, 1, 0, ReduceOp::Sum);
            let bcast = pe.shared_malloc::<u64>(8);
            collectives::broadcast(pe, &bcast, &reduced, 8, 1, 0);
            pe.barrier();
            let manual = pe.heap_read_vec::<u64>(bcast.whole(), 8);

            // Library reduce_all.
            let mut auto = vec![0u64; 8];
            collectives::reduce_all(
                pe,
                &mut auto,
                &src,
                8,
                ReduceOp::Sum,
                collectives::AllReduceAlgo::ReduceThenBroadcast,
            );
            pe.barrier();
            (manual, auto)
        });
        for (rank, (manual, auto)) in report.results.iter().enumerate() {
            assert_eq!(manual, auto, "n={n_pes} rank={rank}");
        }
    }
}

#[test]
fn typed_api_agrees_with_generic_api() {
    use xbgas::xbrtime::typed;
    let report = Fabric::run(FabricConfig::new(4), |pe| {
        let src = pe.shared_malloc::<i32>(4);
        pe.heap_write(src.whole(), &[pe.rank() as i32; 4]);
        pe.barrier();

        let mut a = [0i32; 4];
        collectives::reduce(pe, &mut a, &src, 4, 1, 2, ReduceOp::Max);
        let mut b = [0i32; 4];
        typed::int::reduce_max(pe, &mut b, &src, 4, 1, 2);
        pe.barrier();
        (a, b)
    });
    assert_eq!(report.results[2].0, report.results[2].1);
    assert_eq!(report.results[2].0, [3; 4]);
}
