//! End-to-end runs of the evaluation workloads (paper §5.2) across PE
//! counts, with verification — the integration surface Figure 4 and
//! Figure 5 stand on.

use xbgas::apps::{run_gups, run_is, GupsConfig, IsClass, IsConfig};
use xbgas::xbrtime::{AlgorithmPolicy, Fabric, FabricConfig, SyncMode};

#[test]
fn gups_verifies_across_pe_counts() {
    for n in [1usize, 2, 3, 4, 8] {
        let table_words = 1usize << 14;
        let cfg = GupsConfig {
            log2_table_size: 14,
            updates_per_pe: (4 * table_words / n).min(8192),
            verify: true,
            use_amo: false,
            policy: AlgorithmPolicy::Binomial,
            sync: SyncMode::Barrier,
        };
        // 3 PEs: 2^14 doesn't divide by 3 — skip, as HPCC requires even
        // distribution (checked separately below).
        if !table_words.is_multiple_of(n) {
            continue;
        }
        let report = Fabric::run(FabricConfig::new(n), move |pe| run_gups(pe, &cfg));
        let errors: usize = report.results.iter().map(|r| r.errors).sum();
        let updates: usize = report.results.iter().map(|r| r.updates).sum();
        assert!(
            errors * 100 <= updates,
            "n={n}: {errors} errors in {updates} updates"
        );
    }
}

#[test]
#[should_panic(expected = "divide evenly")]
fn gups_rejects_uneven_distribution() {
    let cfg = GupsConfig {
        log2_table_size: 10,
        updates_per_pe: 16,
        verify: false,
        use_amo: false,
        policy: AlgorithmPolicy::Binomial,
        sync: SyncMode::Barrier,
    };
    Fabric::run(FabricConfig::new(3), move |pe| run_gups(pe, &cfg));
}

#[test]
fn is_sorts_and_verifies_all_classes_downscaled() {
    // Class S directly; larger classes via equivalent Custom scaling so the
    // debug-mode suite stays quick.
    let classes = [
        IsClass::S,
        IsClass::Custom {
            log2_keys: 14,
            log2_max_key: 10,
        },
    ];
    for class in classes {
        for n in [1usize, 2, 4] {
            let cfg = IsConfig {
                class,
                iterations: 2,
                verify: true,
                policy: AlgorithmPolicy::Binomial,
                sync: SyncMode::Barrier,
            };
            let report = Fabric::run(FabricConfig::new(n), move |pe| run_is(pe, &cfg));
            for (rank, r) in report.results.iter().enumerate() {
                assert!(r.verified, "class {class:?} n={n} rank={rank}");
            }
        }
    }
}

#[test]
fn is_class_sizes_match_npb() {
    assert_eq!(IsClass::S.sizes(), (1 << 16, 1 << 11));
    assert_eq!(IsClass::W.sizes(), (1 << 20, 1 << 16));
    assert_eq!(IsClass::A.sizes(), (1 << 23, 1 << 19));
    assert_eq!(IsClass::B.sizes(), (1 << 25, 1 << 21));
    assert_eq!(IsClass::B.iterations(), 10);
}

#[test]
fn simulated_time_is_deterministic_for_single_pe() {
    // With one PE there is no cross-thread interleaving at all: the cycle
    // count must be bit-identical across runs.
    let run = || {
        let cfg = GupsConfig {
            log2_table_size: 12,
            updates_per_pe: 4096,
            verify: false,
            use_amo: false,
            policy: AlgorithmPolicy::Binomial,
            sync: SyncMode::Barrier,
        };
        let report = Fabric::run(FabricConfig::paper(1), move |pe| run_gups(pe, &cfg));
        report.results[0].cycles
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a > 0);
}

#[test]
fn multi_pe_simulated_time_is_stable() {
    // Cross-thread runs may interleave differently, but the skew-immune
    // utilization model keeps makespans within a modest band (the exact
    // queueing estimate depends on how peer ratios evolve in wall time).
    let run = || {
        let cfg = GupsConfig {
            log2_table_size: 14,
            updates_per_pe: 8192,
            verify: false,
            use_amo: false,
            policy: AlgorithmPolicy::Binomial,
            sync: SyncMode::Barrier,
        };
        let report = Fabric::run(FabricConfig::paper(4), move |pe| run_gups(pe, &cfg));
        report.results.iter().map(|r| r.cycles).max().unwrap()
    };
    let a = run() as f64;
    let b = run() as f64;
    assert!(
        (a - b).abs() / a < 0.15,
        "makespans {a} and {b} diverge more than 15%"
    );
}

#[test]
fn is_histogram_matches_sequential_oracle() {
    // The deterministic NPB key stream lets a sequential oracle recompute
    // the exact global histogram the distributed reduce+broadcast must
    // produce. Check the final iteration's histogram for a small class.
    use xbgas::apps::generate_keys;
    use xbgas::xbrtime::collectives::{self, AllReduceAlgo};

    let n_pes = 4;
    let (total_keys, max_key) = (1usize << 12, 1usize << 8);
    let per_pe = total_keys / n_pes;

    let report = Fabric::run(FabricConfig::new(n_pes), move |pe| {
        let keys = generate_keys(pe.rank(), per_pe, max_key);
        let mut local = vec![0u64; max_key];
        for &k in &keys {
            local[k as usize] += 1;
        }
        let sym = pe.shared_malloc::<u64>(max_key);
        pe.heap_write(sym.whole(), &local);
        pe.barrier();
        let mut global = vec![0u64; max_key];
        collectives::reduce_all_with(
            pe,
            &mut global,
            &sym,
            max_key,
            |a: u64, b: u64| a + b,
            AllReduceAlgo::ReduceThenBroadcast,
        );
        pe.barrier();
        global
    });

    // Sequential oracle over the identical global stream.
    let all_keys = generate_keys(0, total_keys, max_key);
    let mut oracle = vec![0u64; max_key];
    for k in all_keys {
        oracle[k as usize] += 1;
    }
    for (rank, got) in report.results.iter().enumerate() {
        assert_eq!(got, &oracle, "rank {rank} histogram diverges from oracle");
    }
}

#[test]
fn fig4_mechanism_cache_hit_rate_rises_as_table_shrinks() {
    // EXPERIMENTS.md attributes Figure 4's per-PE bump to smaller per-PE
    // table partitions hitting the L2/TLB more often. Verify the mechanism
    // directly through the per-PE cache statistics.
    // The reuse effect needs HPCC-like pressure (≥4 touches per word), so
    // use a compact table with the full 4x update ratio.
    let hit_rates = |n: usize| {
        let cfg = GupsConfig {
            log2_table_size: 18, // 2 MiB total: spans 512 pages vs the 256-entry TLB
            updates_per_pe: (1 << 20) / n,
            verify: false,
            use_amo: false,
            policy: AlgorithmPolicy::Binomial,
            sync: SyncMode::Barrier,
        };
        let fc =
            xbgas::xbrtime::FabricConfig::paper(n).with_shared_bytes(cfg.table_bytes() + (1 << 20));
        let report = Fabric::run(fc, move |pe| {
            let r = run_gups(pe, &cfg);
            let (_, l2, tlb) = pe.mem_stats();
            (
                r,
                l2.hit_rate(),
                tlb.hits as f64 / (tlb.hits + tlb.misses).max(1) as f64,
            )
        });
        let l2: f64 = report.results.iter().map(|(_, l2, _)| l2).sum::<f64>() / n as f64;
        let tlb: f64 = report.results.iter().map(|(_, _, t)| t).sum::<f64>() / n as f64;
        (l2, tlb)
    };
    let (l2_1, tlb_1) = hit_rates(1);
    let (l2_4, tlb_4) = hit_rates(4);
    assert!(
        tlb_4 > tlb_1 + 0.05,
        "TLB hit rate must rise with smaller partitions: 1 PE {tlb_1:.3} vs 4 PEs {tlb_4:.3}"
    );
    assert!(
        l2_4 >= l2_1 - 0.1,
        "L2 hit rate must not collapse: 1 PE {l2_1:.3} vs 4 PEs {l2_4:.3}"
    );
}
