//! Self-modifying code: stores that land on translated instructions must
//! invalidate the affected blocks before a stale op can execute, on the
//! local PE and across the fabric. Each scenario runs on both engines and
//! must agree bit-for-bit (the interpreter re-fetches every instruction,
//! so it is immune to staleness by construction — the perfect oracle).

// The `..ProptestConfig::default()` spread is upstream proptest's
// canonical config idiom; the local shim happens to have no other
// fields, which trips needless_update.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use xbgas_isa::{encode, AluImmOp, Inst, XReg};
use xbgas_sim::asm::assemble;
use xbgas_sim::cost::{ExecMode, MachineConfig};
use xbgas_sim::machine::{Machine, RunExit};

/// Run `setup` on both engines and require bit-identical outcomes;
/// returns the block-engine machine for scenario-specific asserts.
fn differential(what: &str, cfg: MachineConfig, setup: impl Fn(&mut Machine)) -> Machine {
    assert_eq!(cfg.exec, ExecMode::Interp, "pass the base config");
    let mut interp = Machine::new(cfg);
    setup(&mut interp);
    let si = interp.run();
    let mut block = Machine::new(cfg.with_block_engine());
    setup(&mut block);
    let sb = block.run();

    assert_eq!(si.exit, sb.exit, "{what}: exit reason diverged");
    for pe in 0..interp.n_harts() {
        let (hi, hb) = (interp.hart(pe), block.hart(pe));
        assert_eq!(hi.pc, hb.pc, "{what}: pe{pe} pc diverged");
        assert_eq!(hi.x, hb.x, "{what}: pe{pe} x register file diverged");
        assert_eq!(hi.e, hb.e, "{what}: pe{pe} e register file diverged");
        assert_eq!(hi.cycles, hb.cycles, "{what}: pe{pe} cycles diverged");
        assert_eq!(hi.instret, hb.instret, "{what}: pe{pe} instret diverged");
        assert_eq!(hi.state, hb.state, "{what}: pe{pe} state diverged");
        let sz = interp.mem(pe).size();
        assert_eq!(
            interp.mem(pe).read_bytes(0, sz).unwrap(),
            block.mem(pe).read_bytes(0, sz).unwrap(),
            "{what}: pe{pe} memory diverged"
        );
    }
    block
}

fn word_of(inst: Inst) -> u32 {
    encode(&inst).unwrap()
}

/// A store patches an instruction *later in the same basic block*: the
/// engine must abandon the block at the store and re-translate, so the
/// patched `addi a0, a0, 100` executes instead of the original `+1`.
#[test]
fn patch_within_current_block() {
    let patched = word_of(Inst::OpImm {
        op: AluImmOp::Addi,
        rd: XReg::A0,
        rs1: XReg::A0,
        imm: 100,
    });
    let src = format!(
        "    la   t1, target\n\
         \x20   li   t0, {patched}\n\
         \x20   sw   t0, 0(t1)\n\
         \x20   nop\n\
         target:\n\
         \x20   addi a0, a0, 1\n\
         \x20   li   a7, 0\n\
         \x20   ecall\n"
    );
    let m = differential("same-block", MachineConfig::test(1), move |m| {
        let img = assemble(0x1000, &src).unwrap();
        m.load_program(0x1000, &img.words);
    });
    assert_eq!(m.hart(0).x[10], 100, "patched instruction must execute");
}

/// A *hot* cached block (a loop back-edge) is patched after several
/// iterations: `j loop` becomes `nop`, so the loop falls through exactly
/// at the patching iteration.
#[test]
fn patch_hot_loop_back_edge() {
    let nop = word_of(Inst::OpImm {
        op: AluImmOp::Addi,
        rd: XReg::ZERO,
        rs1: XReg::ZERO,
        imm: 0,
    });
    let src = format!(
        "    li   s0, 0\n\
         loop:\n\
         \x20   addi s0, s0, 1\n\
         \x20   li   t2, 5\n\
         \x20   bne  s0, t2, skip\n\
         \x20   la   t1, back\n\
         \x20   li   t0, {nop}\n\
         \x20   sw   t0, 0(t1)\n\
         skip:\n\
         \x20   nop\n\
         back:\n\
         \x20   j    loop\n\
         \x20   li   a7, 0\n\
         \x20   ecall\n"
    );
    let m = differential("hot-loop", MachineConfig::test(1), move |m| {
        let img = assemble(0x1000, &src).unwrap();
        m.load_program(0x1000, &img.words);
    });
    assert_eq!(m.hart(0).x[8], 5, "loop must exit at the patch iteration");
}

/// Cross-PE self-modification: PE0 patches a subroutine in PE1's memory
/// over the fabric (esw) between two barriers. PE1 has already executed —
/// and cached — that subroutine, so the remote store must invalidate PE1's
/// translation, not just its memory.
#[test]
fn remote_patch_invalidates_peer_cache() {
    let patched = word_of(Inst::OpImm {
        op: AluImmOp::Addi,
        rd: XReg::A0,
        rs1: XReg::A0,
        imm: 100,
    });
    let pe1_src = "    li   s0, 3\n\
         warm:\n\
         \x20   call target\n\
         \x20   addi s0, s0, -1\n\
         \x20   bnez s0, warm\n\
         \x20   li   a7, 4\n\
         \x20   ecall\n\
         \x20   li   a7, 4\n\
         \x20   ecall\n\
         \x20   call target\n\
         \x20   li   a7, 0\n\
         \x20   ecall\n\
         target:\n\
         \x20   addi a0, a0, 1\n\
         \x20   ret\n";
    let pe1 = assemble(0x1000, pe1_src).unwrap();
    let target = pe1.label("target").unwrap();
    let pe0_src = format!(
        "    li   a7, 4\n\
         \x20   ecall\n\
         \x20   eaddie e5, zero, 2\n\
         \x20   li   t0, {target}\n\
         \x20   li   t1, {patched}\n\
         \x20   esw  t1, 0(t0)\n\
         \x20   li   a7, 4\n\
         \x20   ecall\n\
         \x20   li   a7, 0\n\
         \x20   ecall\n"
    );
    let m = differential("remote-patch", MachineConfig::test(2), move |m| {
        let pe0 = assemble(0x1000, &pe0_src).unwrap();
        m.load_words(0, 0x1000, &pe0.words);
        let pe1 = assemble(0x1000, pe1_src).unwrap();
        m.load_words(1, 0x1000, &pe1.words);
        m.hart_mut(0).pc = 0x1000;
        m.hart_mut(1).pc = 0x1000;
    });
    // 3 warm calls of +1, then one patched call of +100.
    assert_eq!(m.hart(1).x[10], 103, "remote patch must take effect");
}

/// Strategy: a patch script — each round rewrites one slot of an
/// 8-instruction straight-line region with a random ALU-immediate op over
/// a small register window, then re-executes the region.
fn arb_patches() -> impl Strategy<Value = Vec<(usize, AluImmOp, u8, u8, i32)>> {
    prop::collection::vec(
        (
            0usize..8,
            prop::sample::select(vec![
                AluImmOp::Addi,
                AluImmOp::Xori,
                AluImmOp::Ori,
                AluImmOp::Andi,
                AluImmOp::Slti,
                AluImmOp::Addiw,
            ]),
            11u8..15, // rd in a1..a4
            11u8..15, // rs1 in a1..a4
            -2048i32..=2047,
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random interleavings of code stores and execution: every round
    /// patches one instruction of the region (driven by a script table in
    /// data memory), then calls it. The interpreter re-fetches each time,
    /// so any stale translation in the block engine diverges immediately.
    #[test]
    fn random_patch_scripts_agree(patches in arb_patches()) {
        let rounds = patches.len();
        let src = format!(
            "    li   s0, {rounds}\n\
             \x20   li   s1, 0x8000\n\
             loop:\n\
             \x20   ld   t0, 0(s1)\n\
             \x20   ld   t1, 8(s1)\n\
             \x20   sw   t1, 0(t0)\n\
             \x20   call region\n\
             \x20   addi s1, s1, 16\n\
             \x20   addi s0, s0, -1\n\
             \x20   bnez s0, loop\n\
             \x20   li   a7, 0\n\
             \x20   ecall\n\
             region:\n\
             {}\
             \x20   ret\n",
            "    addi a1, a1, 1\n".repeat(8),
        );
        let img = assemble(0x1000, &src).unwrap();
        let region = img.label("region").unwrap();
        let patches = patches.clone();
        let run = |exec: ExecMode| {
            let cfg = MachineConfig::test(1);
            let cfg = if exec == ExecMode::Block { cfg.with_block_engine() } else { cfg };
            let mut m = Machine::new(cfg);
            m.load_program(0x1000, &img.words);
            for (i, &(slot, op, rd, rs1, imm)) in patches.iter().enumerate() {
                let word = word_of(Inst::OpImm {
                    op,
                    rd: XReg::new(rd),
                    rs1: XReg::new(rs1),
                    imm,
                });
                let base = 0x8000 + 16 * i as u64;
                m.mem_mut(0).store_u64(base, region + 4 * slot as u64).unwrap();
                m.mem_mut(0).store_u64(base + 8, word as u64).unwrap();
            }
            let summary = m.run();
            (summary, m)
        };
        let (si, interp) = run(ExecMode::Interp);
        let (sb, block) = run(ExecMode::Block);
        prop_assert_eq!(si.exit, RunExit::AllHalted);
        prop_assert_eq!(si.exit, sb.exit);
        let (hi, hb) = (interp.hart(0), block.hart(0));
        prop_assert_eq!(hi.x, hb.x, "register file diverged for {:?}", &patches);
        prop_assert_eq!(hi.cycles, hb.cycles);
        prop_assert_eq!(hi.instret, hb.instret);
        let sz = interp.mem(0).size();
        prop_assert_eq!(
            interp.mem(0).read_bytes(0, sz).unwrap(),
            block.mem(0).read_bytes(0, sz).unwrap()
        );
    }
}
