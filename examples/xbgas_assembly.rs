//! Drive the instruction-level xBGAS machine directly: assemble a kernel
//! that uses extended loads/stores and the OLB, run it on a multi-core
//! simulated machine, and inspect the architectural results.
//!
//! The kernel is SPMD: every PE writes a token into its *right* neighbour's
//! memory with `esd` (an xBGAS base extended store through the paired
//! e-register), barriers, then reads the token its *left* neighbour left
//! behind and prints it — a ring exchange in twelve instructions.
//!
//! ```sh
//! cargo run --example xbgas_assembly
//! ```

use xbgas::sim::asm::assemble;
use xbgas::sim::cost::MachineConfig;
use xbgas::sim::machine::{Machine, RunExit};

const KERNEL: &str = r#"
    # ring exchange: store (100 + my_pe) into right neighbour's 0x8000
    li   a7, 2              # MY_PE
    ecall                   # a0 = my rank
    mv   s0, a0             # save rank
    li   a7, 3              # NUM_PES
    ecall                   # a0 = n_pes
    mv   s1, a0

    addi t0, s0, 1
    rem  t0, t0, s1         # right neighbour rank
    addi t0, t0, 1          # OLB object ID = rank + 1
    lui  t1, 0x8            # t1 = 0x8000
    eaddie e6, t0, 0        # e6 pairs with t1 (x6): target object
    addi t2, s0, 100        # token = 100 + my rank
    esd  t2, 0(t1)          # remote store through the OLB

    li   a7, 4              # BARRIER
    ecall

    eaddie e6, zero, 0      # e6 = 0: back to local addressing
    eld  a0, 0(t1)          # load the token my left neighbour stored
    li   a7, 5              # PRINT_UINT
    ecall

    li   a7, 0              # EXIT with the token as code
    ecall
"#;

fn main() {
    let n = 6;
    let mut config = MachineConfig::paper();
    config.n_harts = n;
    let mut machine = Machine::new(config);

    let image = assemble(0x1000, KERNEL).expect("kernel must assemble");
    println!(
        "assembled {} instructions at {:#x}\n",
        image.words.len(),
        image.base
    );
    machine.load_program(0x1000, &image.words);

    let summary = machine.run();
    assert_eq!(
        summary.exit,
        RunExit::AllHalted,
        "machine: {:?}",
        summary.exit
    );

    println!("PE  console  cycles  instret");
    for pe in 0..n {
        println!(
            "{pe:>2}  {:>7}  {:>6}  {:>7}",
            machine.output(pe),
            summary.cycles[pe],
            summary.instret[pe]
        );
        // PE p's left neighbour is (p + n - 1) % n; its token is 100 + that.
        let expect = 100 + (pe + n - 1) % n;
        assert_eq!(machine.output(pe), expect.to_string());
    }
    let noc = machine.noc_stats();
    println!(
        "\ninterconnect: {} transactions, {} bytes (each PE stored 8 bytes remotely)",
        noc.transactions, noc.bytes
    );
}
