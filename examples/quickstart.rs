//! Quickstart: the xbrtime runtime in one screen.
//!
//! Mirrors the xBGAS runtime's canonical hello-world: initialise the PGAS
//! environment, allocate symmetric memory, move data with one-sided
//! put/get, synchronise with barriers, and run each of the four paper
//! collectives once.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xbgas::xbrtime::collectives;
use xbgas::xbrtime::{Fabric, FabricConfig, ReduceOp};

fn main() {
    let n_pes = 4;
    println!("launching {n_pes} PEs (threads standing in for xBGAS nodes)\n");

    let report = Fabric::run(FabricConfig::new(n_pes), |pe| {
        let me = pe.rank();
        let n = pe.n_pes();

        // --- symmetric allocation: same offset on every PE ------------
        let inbox = pe.shared_malloc::<u64>(1);
        let data = pe.shared_malloc::<u64>(4);
        pe.barrier();

        // --- one-sided put: message my right neighbour -----------------
        pe.put(inbox.whole(), &[me as u64 * 100], 1, 1, (me + 1) % n);
        pe.barrier();
        let from_left = pe.heap_load(inbox.whole());

        // --- broadcast (Algorithm 1) -----------------------------------
        let payload = [1u64, 2, 3, 4];
        collectives::broadcast(pe, &data, &payload, 4, 1, 0);
        pe.barrier();
        let bcast = pe.heap_read_vec::<u64>(data.whole(), 4);

        // --- reduction (Algorithm 2): sum of (rank+1) over PEs ---------
        let contrib = pe.shared_malloc::<u64>(1);
        pe.heap_store(contrib.whole(), me as u64 + 1);
        pe.barrier();
        let mut sum = [0u64];
        collectives::reduce(pe, &mut sum, &contrib, 1, 1, 0, ReduceOp::Sum);

        // --- scatter + gather (Algorithms 3, 4) ------------------------
        let msgs = vec![1usize; n];
        let disp: Vec<usize> = (0..n).collect();
        let src: Vec<u64> = if me == 0 {
            (10..10 + n as u64).collect()
        } else {
            vec![]
        };
        let mut mine = [0u64];
        collectives::scatter(pe, &mut mine, &src, &msgs, &disp, n, 0);
        pe.barrier();
        let mut gathered = vec![0u64; n];
        collectives::gather(pe, &mut gathered, &mine, &msgs, &disp, n, 0);
        pe.barrier();

        (from_left, bcast, sum[0], mine[0], gathered)
    });

    for (rank, (from_left, bcast, sum, mine, gathered)) in report.results.iter().enumerate() {
        println!("PE {rank}: got {from_left} from left neighbour");
        println!("       broadcast payload  = {bcast:?}");
        if rank == 0 {
            println!("       reduction (sum)    = {sum} (1+2+3+4)");
            println!("       gathered           = {gathered:?}");
        }
        println!("       my scatter element = {mine}");
    }
    println!(
        "\nfabric stats: {} puts, {} gets, {} barriers",
        report.stats.puts, report.stats.gets, report.stats.barriers
    );
}
