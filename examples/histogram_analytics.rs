//! High-performance analytics scenario (paper §3.1 names this domain):
//! a distributed word-length histogram over a sharded corpus, combined
//! with the tree reduction, then queried with broadcast.
//!
//! Each PE owns a shard of synthetic records, histograms a feature
//! locally, contributes through `reduce`, and rank 0 broadcasts the
//! percentile cut so every PE can filter its shard — the reduce→broadcast
//! round-trip that real PGAS analytics pipelines run per query.
//!
//! ```sh
//! cargo run --example histogram_analytics
//! ```

use xbgas::xbrtime::collectives;
use xbgas::xbrtime::{Fabric, FabricConfig, ReduceOp};

const BUCKETS: usize = 32;
const RECORDS_PER_PE: usize = 100_000;

/// Deterministic per-PE synthetic records (a feature in [0, BUCKETS)).
fn shard(rank: usize) -> Vec<u32> {
    // SplitMix64 over a rank-salted seed; skewed by a triangular transform
    // so the histogram has structure worth querying. Pre-mix the rank so
    // shards are genuinely distinct streams, not shifted copies.
    let mut x = (rank as u64 + 1).wrapping_mul(0xD1B54A32D192ED03) ^ 0x9E3779B97F4A7C15;
    (0..RECORDS_PER_PE)
        .map(|_| {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let a = (z & 0xFFFF) as u32 % BUCKETS as u32;
            let b = ((z >> 16) & 0xFFFF) as u32 % BUCKETS as u32;
            a.min(b) // triangular: mass toward small buckets
        })
        .collect()
}

fn main() {
    let n_pes = 6;
    let report = Fabric::run(FabricConfig::new(n_pes), |pe| {
        let records = shard(pe.rank());

        // Local histogram into the symmetric contribution buffer.
        let mut local = [0u64; BUCKETS];
        for &r in &records {
            local[r as usize] += 1;
        }
        let contrib = pe.shared_malloc::<u64>(BUCKETS);
        pe.heap_write(contrib.whole(), &local);
        pe.barrier();

        // Tree reduction of the histogram to rank 0 (Algorithm 2).
        let mut global = [0u64; BUCKETS];
        collectives::reduce(pe, &mut global, &contrib, BUCKETS, 1, 0, ReduceOp::Sum);

        // Rank 0 finds the 90th-percentile bucket and broadcasts it.
        let cut_buf = pe.shared_malloc::<u64>(1);
        let cut = if pe.rank() == 0 {
            let total: u64 = global.iter().sum();
            let mut acc = 0u64;
            let mut cut = BUCKETS - 1;
            for (b, &c) in global.iter().enumerate() {
                acc += c;
                if acc * 10 >= total * 9 {
                    cut = b;
                    break;
                }
            }
            [cut as u64]
        } else {
            [0u64]
        };
        collectives::broadcast(pe, &cut_buf, &cut, 1, 1, 0);
        pe.barrier();
        let cut = pe.heap_load(cut_buf.whole()) as u32;

        // Every PE filters its shard against the broadcast cut.
        let outliers = records.iter().filter(|&&r| r > cut).count();
        (global, cut, outliers)
    });

    let (global, cut, _) = &report.results[0];
    let total: u64 = global.iter().sum();
    println!("global histogram over {total} records ({n_pes} PEs x {RECORDS_PER_PE}):");
    let max = *global.iter().max().unwrap();
    for (b, &c) in global.iter().enumerate() {
        let bar = "#".repeat((c * 50 / max.max(1)) as usize);
        println!("{b:>3} {c:>8} {bar}");
    }
    println!("\n90th-percentile bucket (broadcast to all PEs): {cut}");
    for (rank, (_, _, outliers)) in report.results.iter().enumerate() {
        println!("PE {rank}: {outliers} outlier records above the cut");
    }
    assert_eq!(total, (n_pes * RECORDS_PER_PE) as u64);
}
