//! Topology-aware collectives (paper §7: "location aware communication
//! optimization using the xBGAS OLB"): 12 PEs in 4 nodes of 3, comparing
//! the flat binomial tree against the hierarchical leader/nodes tree on
//! a fabric where intra-node links are 4× cheaper.
//!
//! ```sh
//! cargo run --release --example multinode_topology
//! ```

use xbgas::xbrtime::collectives;
use xbgas::xbrtime::{Fabric, FabricConfig, Topology};

const MSG: usize = 8192;

fn measure(hier: bool, n_pes: usize, pes_per_node: usize) -> u64 {
    let cfg = FabricConfig::paper(n_pes)
        .with_shared_bytes(MSG * 8 + (1 << 20))
        .with_topology(Topology {
            pes_per_node,
            intra_node_factor: 0.25,
        });
    let report = Fabric::run(cfg, move |pe| {
        let dest = pe.shared_malloc::<u64>(MSG);
        let src: Vec<u64> = (0..MSG as u64).collect();
        pe.barrier();
        let t0 = pe.cycles();
        if hier {
            collectives::broadcast_hier(pe, &dest, &src, MSG, 0);
        } else {
            collectives::broadcast(pe, &dest, &src, MSG, 1, 0);
        }
        pe.barrier();
        let elapsed = pe.cycles() - t0;
        // Verify delivery while we're here.
        let got = pe.heap_read_vec::<u64>(dest.whole(), MSG);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64));
        elapsed
    });
    report.results.into_iter().max().unwrap()
}

fn main() {
    println!(
        "broadcast of {MSG} u64 ({} KiB), intra-node links 4x cheaper\n",
        MSG * 8 / 1024
    );
    println!(
        "{:>6} {:>10} {:>16} {:>12} {:>9}",
        "PEs", "node size", "hierarchical cyc", "flat cyc", "speedup"
    );
    for (n, k) in [(8usize, 4usize), (12, 3), (12, 4), (12, 6), (10, 3)] {
        let hier = measure(true, n, k);
        let flat = measure(false, n, k);
        println!(
            "{n:>6} {k:>10} {hier:>16} {flat:>12} {:>8.2}x",
            flat as f64 / hier as f64
        );
    }
    println!(
        "\nWhen node boundaries align with the tree's power-of-two splits the\n\
         flat binomial with recursive halving is already location-friendly —\n\
         the paper's §4.3 sequential-rank assumption. The hierarchy wins on\n\
         ragged node sizes (e.g. 12 PEs in nodes of 3)."
    );
}
