//! Classic PGAS halo exchange: a 1-D heat-diffusion stencil where each PE
//! owns a block of the rod and pushes boundary cells into its neighbours'
//! ghost slots with one-sided puts — the communication pattern the
//! runtime's non-blocking put/wait pair exists for.
//!
//! ```sh
//! cargo run --example stencil_halo
//! ```

use xbgas::xbrtime::{Fabric, FabricConfig};

const CELLS_PER_PE: usize = 64;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn main() {
    let n_pes = 4;
    let report = Fabric::run(FabricConfig::new(n_pes), |pe| {
        let me = pe.rank();
        let n = pe.n_pes();

        // Layout: [left ghost][CELLS_PER_PE interior][right ghost].
        let field = pe.shared_malloc::<f64>(CELLS_PER_PE + 2);

        // Initial condition: a hot spike in the middle of the global rod.
        let mut interior = vec![0.0f64; CELLS_PER_PE + 2];
        if me == n / 2 {
            interior[CELLS_PER_PE / 2 + 1] = 1000.0;
        }
        pe.heap_write(field.whole(), &interior);
        pe.barrier();

        for _ in 0..STEPS {
            let cur = pe.heap_read_vec::<f64>(field.whole(), CELLS_PER_PE + 2);

            // Halo exchange: push my boundary cells into neighbours' ghosts
            // (non-blocking; both transfers overlap).
            let mut handles = Vec::new();
            if me > 0 {
                handles.push(pe.put_nb(field.at(CELLS_PER_PE + 1), &cur[1..2], 1, 1, me - 1));
            }
            if me + 1 < n {
                handles.push(pe.put_nb(
                    field.at(0),
                    &cur[CELLS_PER_PE..CELLS_PER_PE + 1],
                    1,
                    1,
                    me + 1,
                ));
            }
            for h in handles {
                pe.wait(h);
            }
            pe.barrier(); // ghosts delivered everywhere

            // Stencil update (ghost cells at the rod ends stay 0: fixed
            // cold boundary).
            let cur = pe.heap_read_vec::<f64>(field.whole(), CELLS_PER_PE + 2);
            let mut next = cur.clone();
            for i in 1..=CELLS_PER_PE {
                next[i] = cur[i] + ALPHA * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
            }
            pe.heap_write(field.whole(), &next);
            pe.barrier(); // all PEs advance to the next step together
        }

        let final_field = pe.heap_read_vec::<f64>(field.whole(), CELLS_PER_PE + 2);
        final_field[1..=CELLS_PER_PE].to_vec()
    });

    // Stitch the global rod back together and sketch it.
    let rod: Vec<f64> = report.results.iter().flatten().copied().collect();
    let total: f64 = rod.iter().sum();
    println!("heat diffusion after {STEPS} steps on {n_pes} PEs x {CELLS_PER_PE} cells");
    println!("total heat remaining: {total:.1} (leaks through the cold ends)\n");

    let max = rod.iter().cloned().fold(f64::MIN, f64::max);
    for (i, chunk) in rod.chunks(8).enumerate() {
        let avg: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let bar = "#".repeat((avg / max * 60.0) as usize);
        println!("cells {:>3}-{:>3} {avg:>9.3} {bar}", i * 8, i * 8 + 7);
    }

    // The profile must be symmetric about the spike and strictly positive
    // near the centre.
    let mid = rod.len() / 2;
    assert!(rod[mid] > 0.0 || rod[mid - 1] > 0.0);
}
