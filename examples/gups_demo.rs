//! GUPs (paper §5.2, Figure 4) at demo scale: run the RandomAccess
//! benchmark with verification on 1/2/4/8 PEs under the paper-calibrated
//! simulated clock and report total and per-PE MOPS.
//!
//! ```sh
//! cargo run --release --example gups_demo
//! ```

use xbgas::apps::{run_gups, GupsConfig};
use xbgas::xbrtime::{AlgorithmPolicy, Fabric, FabricConfig, SyncMode};

fn main() {
    // Demo scale: 2 MiB table, 2^16 total updates, verification on.
    let log2_table = 18u32;
    let total_updates = 1usize << 16;

    println!("GUPs: 2^{log2_table}-word table, {total_updates} updates, verification enabled\n");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>8}",
        "PEs", "total MOPS", "MOPS/PE", "remote frac", "errors"
    );

    for n in [1usize, 2, 4, 8] {
        let cfg = GupsConfig {
            log2_table_size: log2_table,
            updates_per_pe: total_updates / n,
            verify: true,
            use_amo: false,
            policy: AlgorithmPolicy::Auto,
            sync: SyncMode::Auto,
        };
        let fc = FabricConfig::paper(n).with_shared_bytes(cfg.table_bytes() + (1 << 20));
        let report = Fabric::run(fc, move |pe| run_gups(pe, &cfg));

        let makespan = report.results.iter().map(|r| r.cycles).max().unwrap();
        let secs = makespan as f64 / 1.0e9;
        let total_mops = total_updates as f64 / secs / 1.0e6;
        let remote: f64 = report
            .results
            .iter()
            .map(|r| r.remote_fraction)
            .sum::<f64>()
            / n as f64;
        let errors: usize = report.results.iter().map(|r| r.errors).sum();
        println!(
            "{n:>4} {total_mops:>12.3} {:>12.3} {remote:>14.2} {errors:>8}",
            total_mops / n as f64
        );
    }
    println!("\n(HPCC semantics: up to 1% verification errors are tolerated to absorb");
    println!(" racing concurrent updates; single-PE runs must verify exactly.)");
}
