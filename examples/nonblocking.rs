//! Nonblocking collectives riding the compiled-plan layer: issue a
//! broadcast and an all-reduce back-to-back, overlap them in flight,
//! then re-issue a fixed-shape broadcast through a persistent handle
//! (the `MPI_Bcast_init` idea) and read the plan-cache telemetry.
//!
//! ```sh
//! cargo run --release --example nonblocking
//! ```

use xbgas::xbrtime::collectives::{self, SyncMode};
use xbgas::xbrtime::{Fabric, FabricConfig};

fn main() {
    let report = Fabric::run(FabricConfig::new(8), |pe| {
        let bc = pe.shared_malloc::<u64>(16);
        let sum = pe.shared_malloc::<u64>(1);
        pe.heap_store(sum.whole(), pe.rank() as u64);
        pe.barrier();

        // Issue a broadcast and an all-reduce back-to-back; both are
        // now in flight. `test` polls without consuming; `wait` drains.
        let payload = [7u64; 16];
        let h1 = collectives::ixbroadcast(pe, &bc, &payload, 16, 0, SyncMode::Auto);
        let h2 = collectives::ixallreduce(pe, &sum, 1, |a, b| a + b, SyncMode::Auto);

        let mut total = [0u64];
        h2.wait_into(pe, &mut total); // 0 + 1 + ... + 7 = 28
        h1.wait(pe); // bc now holds the payload everywhere
        assert_eq!(pe.heap_load(bc.whole()), 7);
        // Puts are one-sided: quiesce reads of `bc` before anyone
        // re-uses it as the persistent broadcast's destination.
        pe.barrier();

        // Fixed-shape iteration: one cache lookup at creation, zero per
        // re-issue.
        let p = collectives::plan_create_broadcast(pe, &bc, 16, 0, SyncMode::Auto);
        for round in 0..4u64 {
            let epoch = [round; 16];
            p.start(pe, &epoch).wait(pe);
            assert_eq!(pe.heap_load(bc.whole()), round);
            pe.barrier(); // quiesce reads before the next root put
        }
        total[0]
    });
    assert!(report.results.iter().all(|&t| t == 28));

    let stats = report.plan_cache.expect("plan cache on by default");
    println!("all-reduce total on every PE: 28");
    println!(
        "plan cache: {} hits / {} misses over {} plans ({} bytes), hit rate {:.0}%",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.bytes,
        stats.hit_rate() * 100.0
    );
}
